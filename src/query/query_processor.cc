#include "query/query_processor.h"

#include <algorithm>
#include <unordered_set>

namespace microprov {

void MessageSearchIndex::Add(const Message& msg) {
  std::vector<std::string> tokens = msg.keywords;
  tokens.insert(tokens.end(), msg.hashtags.begin(), msg.hashtags.end());
  tokens.insert(tokens.end(), msg.urls.begin(), msg.urls.end());
  index_.AddDocument(tokens);
  docs_.Add(msg.id, msg.text);
  users_.push_back(msg.user);
  dates_.push_back(msg.date);
}

std::vector<MessageSearchResult> MessageSearchIndex::Search(
    const std::string& query, size_t k, obs::SpanRecorder* recorder,
    uint32_t parent_span) const {
  obs::Span parse_span(recorder, "parse", parent_span);
  ParsedQuery parsed = ParseQuery(query);
  std::vector<std::string> terms = parsed.keywords;
  terms.insert(terms.end(), parsed.hashtags.begin(), parsed.hashtags.end());
  terms.insert(terms.end(), parsed.urls.begin(), parsed.urls.end());
  parse_span.End();
  obs::Span topk_span(recorder, "topk", parent_span);
  Searcher searcher(&index_);
  std::vector<MessageSearchResult> out;
  for (const SearchHit& hit : searcher.TopK(terms, k, &scratch_)) {
    out.push_back(MessageSearchResult{
        docs_.ExternalId(hit.doc), hit.score, users_[hit.doc],
        dates_[hit.doc], docs_.Snippet(hit.doc)});
  }
  return out;
}

size_t MessageSearchIndex::ApproxMemoryUsage() const {
  size_t total = index_.ApproxMemoryUsage() + docs_.ApproxMemoryUsage();
  for (const auto& u : users_) total += u.capacity();
  total += dates_.capacity() * sizeof(Timestamp);
  return total;
}

void BundleQueryProcessor::BindMetrics(obs::MetricsRegistry* registry) {
  queries_counter_ =
      registry->GetCounter("microprov_query_requests_total", "",
                           "Bundle search requests served");
  latency_hist_ =
      registry->GetHistogram("microprov_query_latency_nanos", "",
                             "End-to-end bundle search latency");
  candidates_hist_ = registry->GetHistogram(
      "microprov_query_candidates", "",
      "Candidate bundles scored per query (live + archived)");
  fanout_hist_ = registry->GetHistogram(
      "microprov_query_fanout", "",
      "Shards consulted per cross-shard search");
}

std::vector<BundleSearchResult> BundleQueryProcessor::Search(
    const BundleQuery& query, obs::SpanRecorder* recorder,
    uint32_t parent_span, uint32_t shard,
    obs::QueryShardTrace* shard_trace) const {
  obs::ScopedLatencyTimer latency_timer(latency_hist_);
  if (queries_counter_ != nullptr) queries_counter_->Increment();
  const size_t k = query.k;
  const Timestamp now = query.now;
  const SearchFilters& filters = query.filters;
  obs::Span parse_span(recorder, "parse", parent_span, shard);
  ParsedQuery parsed = ParseQuery(query.text);
  parse_span.End();
  if (shard_trace != nullptr) {
    // Resolve the query's terms in this shard's interning dictionary:
    // -1 marks a term the shard has never seen (so its postings lookup
    // was guaranteed empty).
    const IndicantDictionary& dict = engine_->dictionary();
    auto resolve = [&](IndicantType type, const std::string& value) {
      TermId id = dict.Find(type, value);
      shard_trace->term_ids.push_back(
          id == kInvalidTermId ? -1 : static_cast<int64_t>(id));
    };
    for (const std::string& term : parsed.keywords) {
      resolve(IndicantType::kKeyword, term);
    }
    for (const std::string& tag : parsed.hashtags) {
      resolve(IndicantType::kHashtag, tag);
    }
    for (const std::string& url : parsed.urls) {
      resolve(IndicantType::kUrl, url);
    }
  }
  if (parsed.empty()) return {};

  auto passes = [&](const Bundle& bundle) {
    if (bundle.size() < filters.min_bundle_size) return false;
    if (filters.since != 0 && bundle.end_time() < filters.since) {
      return false;
    }
    if (filters.until != 0 && bundle.start_time() > filters.until) {
      return false;
    }
    return true;
  };

  const SummaryIndex& index = engine_->summary_index();
  const BundlePool& pool = engine_->pool();

  // Candidate bundles: union of postings for each query term, checking
  // keywords, hashtags (a bare word may name a tag), and URLs.
  obs::Span candidates_span(recorder, "candidates", parent_span, shard);
  std::unordered_set<BundleId> candidates;
  for (const std::string& term : parsed.keywords) {
    for (BundleId id : index.Lookup(IndicantType::kKeyword, term)) {
      candidates.insert(id);
    }
    for (BundleId id : index.Lookup(IndicantType::kHashtag, term)) {
      candidates.insert(id);
    }
  }
  // Raw (unstemmed) words reach hashtags stored verbatim.
  for (const std::string& word : parsed.raw_words) {
    for (BundleId id : index.Lookup(IndicantType::kHashtag, word)) {
      candidates.insert(id);
    }
  }
  for (const std::string& tag : parsed.hashtags) {
    for (BundleId id : index.Lookup(IndicantType::kHashtag, tag)) {
      candidates.insert(id);
    }
  }
  for (const std::string& url : parsed.urls) {
    for (BundleId id : index.Lookup(IndicantType::kUrl, url)) {
      candidates.insert(id);
    }
  }
  candidates_span.End();

  const size_t total_bundles =
      query.total_bundles > 0 ? query.total_bundles : pool.size();
  auto make_result = [&](const Bundle& bundle, bool archived) {
    BundleSearchResult result;
    result.bundle = bundle.id();
    result.score = BundleRelevance(parsed, bundle, index, total_bundles,
                                   now, weights_);
    result.size = bundle.size();
    result.last_post = bundle.end_time();
    for (auto& [word, count] : bundle.TopKeywords(10)) {
      result.summary_words.push_back(word);
    }
    result.archived = archived;
    return result;
  };

  obs::Span score_span(recorder, "score", parent_span, shard);
  std::vector<BundleSearchResult> results;
  results.reserve(candidates.size());
  for (BundleId id : candidates) {
    const Bundle* bundle = pool.Get(id);
    if (bundle == nullptr || !passes(*bundle)) continue;
    results.push_back(make_result(*bundle, /*archived=*/false));
  }
  score_span.End();
  if (shard_trace != nullptr) shard_trace->candidates = results.size();

  // Archived candidates via the store's term index.
  obs::Span archive_span(recorder, "archive", parent_span, shard);
  const size_t live_results = results.size();
  if (archive_ != nullptr && filters.include_archived) {
    std::unordered_set<BundleId> archived_ids;
    auto collect = [&](const std::string& term) {
      for (BundleId id : archive_->FindByTerm(term)) {
        if (candidates.count(id) == 0) archived_ids.insert(id);
      }
    };
    for (const std::string& term : parsed.keywords) collect(term);
    for (const std::string& word : parsed.raw_words) collect(word);
    for (const std::string& tag : parsed.hashtags) collect(tag);
    size_t decoded = 0;
    for (BundleId id : archived_ids) {
      if (decoded++ >= kMaxArchivedCandidates) break;
      auto bundle_or = archive_->Get(id);
      if (!bundle_or.ok() || !passes(**bundle_or)) continue;
      results.push_back(make_result(**bundle_or, /*archived=*/true));
    }
  }
  archive_span.End();
  if (shard_trace != nullptr) {
    shard_trace->archived_candidates = results.size() - live_results;
  }
  if (candidates_hist_ != nullptr) {
    candidates_hist_->Observe(results.size());
  }
  obs::Span rank_span(recorder, "rank", parent_span, shard);
  size_t take = std::min(k, results.size());
  std::partial_sort(results.begin(), results.begin() + take, results.end(),
                    [](const BundleSearchResult& a,
                       const BundleSearchResult& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.bundle < b.bundle;
                    });
  results.resize(take);
  rank_span.End();
  if (shard_trace != nullptr) shard_trace->results = results.size();
  return results;
}

std::vector<BundleSearchResult> BundleQueryProcessor::SearchShards(
    const std::vector<const BundleQueryProcessor*>& shards,
    const BundleQuery& query, obs::SpanRecorder* recorder,
    uint32_t parent_span, obs::QueryTraceEvent* event) {
  BundleQuery shard_query = query;
  if (shard_query.total_bundles == 0) {
    for (const BundleQueryProcessor* shard : shards) {
      if (shard != nullptr) {
        shard_query.total_bundles += shard->engine_->pool().size();
      }
    }
  }
  if (event != nullptr) {
    event->total_bundles = shard_query.total_bundles;
  }

  std::vector<BundleSearchResult> merged;
  size_t consulted = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    if (shards[i] == nullptr) continue;
    ++consulted;
    const uint32_t shard_index = static_cast<uint32_t>(i);
    obs::QueryShardTrace shard_trace;
    shard_trace.shard = shard_index;
    obs::Span shard_span(recorder, "shard_search", parent_span,
                         shard_index);
    for (BundleSearchResult& hit : shards[i]->Search(
             shard_query, recorder, shard_span.id(), shard_index,
             event != nullptr ? &shard_trace : nullptr)) {
      hit.shard = shard_index;
      merged.push_back(std::move(hit));
    }
    shard_span.End();
    if (event != nullptr) {
      event->shards.push_back(std::move(shard_trace));
    }
  }
  for (const BundleQueryProcessor* shard : shards) {
    if (shard != nullptr && shard->fanout_hist_ != nullptr) {
      shard->fanout_hist_->Observe(consulted);
      break;  // the histogram is shared; one observation per search
    }
  }
  obs::Span merge_span(recorder, "merge", parent_span);
  size_t take = std::min(query.k, merged.size());
  std::partial_sort(merged.begin(), merged.begin() + take, merged.end(),
                    [](const BundleSearchResult& a,
                       const BundleSearchResult& b) {
                      if (a.score != b.score) return a.score > b.score;
                      if (a.shard != b.shard) return a.shard < b.shard;
                      return a.bundle < b.bundle;
                    });
  merged.resize(take);
  merge_span.End();
  if (event != nullptr) {
    event->result_count = merged.size();
  }
  return merged;
}

}  // namespace microprov
