#include "query/query_processor.h"

#include <algorithm>

#include "core/candidate_accumulator.h"

namespace microprov {
namespace {

/// Slack for the prune comparison: the upper bound's arithmetic is
/// associated differently from the score's, so a candidate is skipped
/// only when its bound sits below the kth score by more than any
/// accumulated rounding error (scores live in [0, ~2], where double
/// error is < 1e-14). Candidates whose bound ties the threshold are
/// scored — the bundle-id tie-break could still admit them — which is
/// what keeps pruned and unpruned runs byte-identical.
constexpr double kPruneSlack = 1e-12;

/// Per-thread reusable buffers for the bundle query pipeline: the plan's
/// term vectors, the epoch-stamped candidate set, the k-bounded heap,
/// and the archived-id list. Thread-local rather than per-processor so
/// (a) Search stays const and safe to call concurrently and (b) shard
/// searches fanned out on a TaskPool get disjoint scratch for free.
/// Steady-state, a query on a warmed thread performs no allocations
/// until the k winners are materialized.
struct QueryScratch {
  QueryPlanScratch plan;
  CandidateAccumulator candidates;
  std::vector<BundleSearchResult> heap;
  std::vector<BundleId> archived_ids;
};

QueryScratch& LocalScratch() {
  static thread_local QueryScratch scratch;
  return scratch;
}

/// Pushes `hit` into the k-bounded heap. BundleResultOrder acts as the
/// heap's operator<, so the "maximum" at the front is the last-sorting —
/// i.e. worst — retained hit, and a full heap admits `hit` only by
/// evicting it.
void PushBounded(std::vector<BundleSearchResult>* heap, size_t k,
                 BundleSearchResult hit) {
  const BundleResultOrder better;
  if (heap->size() < k) {
    heap->push_back(std::move(hit));
    std::push_heap(heap->begin(), heap->end(), better);
    return;
  }
  if (!better(hit, heap->front())) return;
  std::pop_heap(heap->begin(), heap->end(), better);
  heap->back() = std::move(hit);
  std::push_heap(heap->begin(), heap->end(), better);
}

}  // namespace

void MessageSearchIndex::Add(const Message& msg) {
  std::vector<std::string> tokens = msg.keywords;
  tokens.insert(tokens.end(), msg.hashtags.begin(), msg.hashtags.end());
  tokens.insert(tokens.end(), msg.urls.begin(), msg.urls.end());
  index_.AddDocument(tokens);
  docs_.Add(msg.id, msg.text);
  users_.push_back(msg.user);
  dates_.push_back(msg.date);
}

std::vector<MessageSearchResult> MessageSearchIndex::Search(
    const std::string& query, size_t k, obs::SpanRecorder* recorder,
    uint32_t parent_span) const {
  obs::Span parse_span(recorder, "parse", parent_span);
  ParsedQuery parsed = ParseQuery(query);
  std::vector<std::string> terms = parsed.keywords;
  terms.insert(terms.end(), parsed.hashtags.begin(), parsed.hashtags.end());
  terms.insert(terms.end(), parsed.urls.begin(), parsed.urls.end());
  parse_span.End();
  obs::Span topk_span(recorder, "topk", parent_span);
  Searcher searcher(&index_);
  // Thread-local (not a mutable member): concurrent Search calls on one
  // index must not share scoring buffers.
  static thread_local SearcherScratch scratch;
  std::vector<MessageSearchResult> out;
  for (const SearchHit& hit : searcher.TopK(terms, k, &scratch)) {
    out.push_back(MessageSearchResult{
        docs_.ExternalId(hit.doc), hit.score, users_[hit.doc],
        dates_[hit.doc], docs_.Snippet(hit.doc)});
  }
  return out;
}

size_t MessageSearchIndex::ApproxMemoryUsage() const {
  size_t total = index_.ApproxMemoryUsage() + docs_.ApproxMemoryUsage();
  for (const auto& u : users_) total += u.capacity();
  total += dates_.capacity() * sizeof(Timestamp);
  return total;
}

void BundleQueryProcessor::BindMetrics(obs::MetricsRegistry* registry) {
  queries_counter_ =
      registry->GetCounter("microprov_query_requests_total", "",
                           "Bundle search requests served");
  pruned_counter_ = registry->GetCounter(
      "microprov_query_candidates_pruned_total", "",
      "Candidates skipped by the top-k upper-bound prune");
  latency_hist_ =
      registry->GetHistogram("microprov_query_latency_nanos", "",
                             "End-to-end bundle search latency");
  examined_hist_ = registry->GetHistogram(
      "microprov_query_candidates_examined", "",
      "Candidate bundles examined per query (live + archived)");
  scored_hist_ = registry->GetHistogram(
      "microprov_query_candidates_scored", "",
      "Candidate bundles fully scored per query (examined minus pruned)");
  fanout_hist_ = registry->GetHistogram(
      "microprov_query_fanout", "",
      "Shards consulted per cross-shard search");
}

std::vector<BundleSearchResult> BundleQueryProcessor::Search(
    const BundleQuery& query, obs::SpanRecorder* recorder,
    uint32_t parent_span, uint32_t shard,
    obs::QueryShardTrace* shard_trace) const {
  obs::Span parse_span(recorder, "parse", parent_span, shard);
  ParsedQuery parsed = ParseQuery(query.text);
  parse_span.End();
  return SearchParsed(parsed, query, recorder, parent_span, shard,
                      shard_trace);
}

std::vector<BundleSearchResult> BundleQueryProcessor::SearchParsed(
    const ParsedQuery& parsed, const BundleQuery& query,
    obs::SpanRecorder* recorder, uint32_t parent_span, uint32_t shard,
    obs::QueryShardTrace* shard_trace) const {
  obs::ScopedLatencyTimer latency_timer(latency_hist_);
  if (queries_counter_ != nullptr) queries_counter_->Increment();
  const size_t k = query.k;
  const Timestamp now = query.now;
  const SearchFilters& filters = query.filters;

  const SummaryIndex& index = engine_->summary_index();
  const BundlePool& pool = engine_->pool();
  const size_t total_bundles =
      query.total_bundles > 0 ? query.total_bundles : pool.size();

  QueryScratch& scratch = LocalScratch();

  // Resolve every query term into this shard's id spaces once and fold
  // the per-term IDFs into the plan (the string path recomputed both
  // per candidate).
  obs::Span plan_span(recorder, "plan", parent_span, shard);
  const QueryPlan plan(parsed, engine_->dictionary(), index, total_bundles,
                       now, weights_, &scratch.plan);
  plan_span.End();
  if (shard_trace != nullptr) {
    // The shard's view of the query terms: -1 marks a term this shard
    // never interned (its postings lookup was guaranteed empty).
    auto push_id = [&](TermId id) {
      shard_trace->term_ids.push_back(
          id == kInvalidTermId ? -1 : static_cast<int64_t>(id));
    };
    for (const PlanKeyword& term : plan.keywords()) push_id(term.keyword);
    for (TermId tag : plan.hashtags()) push_id(tag);
    for (TermId url : plan.urls()) push_id(url);
  }
  if (parsed.empty() || k == 0) return {};

  auto passes = [&](const Bundle& bundle) {
    if (bundle.size() < filters.min_bundle_size) return false;
    if (filters.since != 0 && bundle.end_time() < filters.since) {
      return false;
    }
    if (filters.until != 0 && bundle.start_time() > filters.until) {
      return false;
    }
    return true;
  };

  // Candidate bundles: union of postings for each query term, checking
  // keywords, hashtags (a bare word may name a tag — stem and raw
  // surface form both), and URLs. Dedupe lives in the epoch-stamped
  // accumulator; nothing allocates once it reaches working size.
  obs::Span candidates_span(recorder, "candidates", parent_span, shard);
  CandidateAccumulator& acc = scratch.candidates;
  acc.Reset();
  for (const PlanKeyword& term : plan.keywords()) {
    index.CollectBundles(IndicantType::kKeyword, term.keyword, &acc);
    index.CollectBundles(IndicantType::kHashtag, term.stem_tag, &acc);
    index.CollectBundles(IndicantType::kHashtag, term.raw_tag, &acc);
  }
  for (TermId tag : plan.hashtags()) {
    index.CollectBundles(IndicantType::kHashtag, tag, &acc);
  }
  for (TermId url : plan.urls()) {
    index.CollectBundles(IndicantType::kUrl, url, &acc);
  }
  candidates_span.End();

  // Score into a k-bounded heap of bare {id, score} records; summary
  // words are materialized for the k winners only, below. With pruning
  // on and the heap full, a candidate whose upper bound cannot beat the
  // kth score is dropped before its summaries are touched.
  obs::Span score_span(recorder, "score", parent_span, shard);
  std::vector<BundleSearchResult>& heap = scratch.heap;
  heap.clear();
  uint64_t live_examined = 0;
  uint64_t archived_examined = 0;
  uint64_t pruned = 0;
  uint64_t scored = 0;
  const bool prune = query.prune;
  acc.ForEach([&](BundleId id, const CandidateHits&) {
    const Bundle* bundle = pool.Get(id);
    if (bundle == nullptr || !passes(*bundle)) return;
    ++live_examined;
    // Pool bundles are stamped by the shard dictionary; anything else
    // (defensive) scores through the string path, whose matches the
    // id-resolved bound does not cover.
    const bool stamped = &bundle->dictionary() == &plan.dictionary();
    if (prune && heap.size() == k) {
      const double bound =
          stamped ? plan.UpperBound(*bundle) : plan.ArchivedUpperBound();
      if (bound + kPruneSlack < heap.front().score) {
        ++pruned;
        return;
      }
    }
    ++scored;
    BundleSearchResult hit;
    hit.bundle = id;
    hit.score = stamped ? plan.Score(*bundle)
                        : BundleRelevance(parsed, *bundle, index,
                                          total_bundles, now, weights_);
    hit.archived = false;
    PushBounded(&heap, k, std::move(hit));
  });
  score_span.End();

  // Archived candidates via the store's term index. Archived bundles
  // decode with private dictionaries, so they score through the string
  // path; the plan's archived bound (every term assumed to hit) lets a
  // full heap skip the decode entirely.
  obs::Span archive_span(recorder, "archive", parent_span, shard);
  if (archive_ != nullptr && filters.include_archived) {
    std::vector<BundleId>& archived_ids = scratch.archived_ids;
    archived_ids.clear();
    auto collect = [&](const std::string& term) {
      for (BundleId id : archive_->FindByTerm(term)) {
        if (!acc.Contains(id)) archived_ids.push_back(id);
      }
    };
    for (const std::string& term : parsed.keywords) collect(term);
    for (const std::string& word : parsed.raw_words) collect(word);
    for (const std::string& tag : parsed.hashtags) collect(tag);
    // Ascending-id order makes which ids fall under the decode cap
    // deterministic (the unordered_set this replaces was not).
    std::sort(archived_ids.begin(), archived_ids.end());
    archived_ids.erase(
        std::unique(archived_ids.begin(), archived_ids.end()),
        archived_ids.end());
    size_t considered = 0;
    for (BundleId id : archived_ids) {
      if (considered++ >= kMaxArchivedCandidates) break;
      if (prune && heap.size() == k &&
          plan.ArchivedUpperBound() + kPruneSlack < heap.front().score) {
        ++archived_examined;
        ++pruned;
        continue;
      }
      auto bundle_or = archive_->Get(id);
      if (!bundle_or.ok() || !passes(**bundle_or)) continue;
      ++archived_examined;
      ++scored;
      BundleSearchResult hit;
      hit.bundle = id;
      hit.score = BundleRelevance(parsed, **bundle_or, index,
                                  total_bundles, now, weights_);
      hit.archived = true;
      PushBounded(&heap, k, std::move(hit));
    }
  }
  archive_span.End();

  if (examined_hist_ != nullptr) {
    examined_hist_->Observe(live_examined + archived_examined);
  }
  if (scored_hist_ != nullptr) scored_hist_->Observe(scored);
  if (pruned_counter_ != nullptr && pruned > 0) {
    pruned_counter_->Increment(pruned);
  }
  if (shard_trace != nullptr) {
    shard_trace->candidates = live_examined;
    shard_trace->archived_candidates = archived_examined;
    shard_trace->examined = live_examined + archived_examined;
    shard_trace->pruned = pruned;
  }

  obs::Span rank_span(recorder, "rank", parent_span, shard);
  std::vector<BundleSearchResult> results(heap.begin(), heap.end());
  std::sort(results.begin(), results.end(), BundleResultOrder{});
  heap.clear();
  rank_span.End();

  // Deferred materialization: summary words, sizes, and timestamps for
  // the k winners only.
  obs::Span mat_span(recorder, "materialize", parent_span, shard);
  auto materialize = [](const Bundle& bundle, BundleSearchResult* hit) {
    hit->size = bundle.size();
    hit->last_post = bundle.end_time();
    for (auto& [word, count] : bundle.TopKeywords(10)) {
      hit->summary_words.push_back(word);
    }
  };
  for (BundleSearchResult& hit : results) {
    if (hit.archived) {
      auto bundle_or = archive_->Get(hit.bundle);
      if (bundle_or.ok()) materialize(**bundle_or, &hit);
    } else {
      const Bundle* bundle = pool.Get(hit.bundle);
      if (bundle != nullptr) materialize(*bundle, &hit);
    }
  }
  mat_span.End();
  if (shard_trace != nullptr) shard_trace->results = results.size();
  return results;
}

std::vector<BundleSearchResult> BundleQueryProcessor::SearchShards(
    const std::vector<const BundleQueryProcessor*>& shards,
    const BundleQuery& query, obs::SpanRecorder* recorder,
    uint32_t parent_span, obs::QueryTraceEvent* event, TaskPool* pool) {
  BundleQuery shard_query = query;
  if (shard_query.total_bundles == 0) {
    for (const BundleQueryProcessor* shard : shards) {
      if (shard != nullptr) {
        shard_query.total_bundles += shard->engine_->pool().size();
      }
    }
  }
  if (event != nullptr) {
    event->total_bundles = shard_query.total_bundles;
  }

  // Parse once; every shard evaluates the same ParsedQuery (the former
  // per-shard Search re-parsed the text N times).
  obs::Span parse_span(recorder, "parse", parent_span);
  const ParsedQuery parsed = ParseQuery(shard_query.text);
  parse_span.End();

  // Per-shard output slots are disjoint, the span recorder is
  // thread-safe, and shard engines/stores are distinct objects, so the
  // shard lambda is safe to run concurrently. Results are identical to
  // the serial order: each shard's output is deterministic and the
  // merge consumes the slots in shard order.
  const size_t n = shards.size();
  std::vector<std::vector<BundleSearchResult>> per_shard(n);
  std::vector<obs::QueryShardTrace> traces(n);
  auto run_shard = [&](size_t i) {
    if (shards[i] == nullptr) return;
    const uint32_t shard_index = static_cast<uint32_t>(i);
    traces[i].shard = shard_index;
    obs::Span shard_span(recorder, "shard_search", parent_span,
                         shard_index);
    per_shard[i] = shards[i]->SearchParsed(
        parsed, shard_query, recorder, shard_span.id(), shard_index,
        event != nullptr ? &traces[i] : nullptr);
    shard_span.End();
  };
  if (pool != nullptr && n > 1) {
    pool->ParallelFor(n, run_shard);
  } else {
    for (size_t i = 0; i < n; ++i) run_shard(i);
  }

  std::vector<BundleSearchResult> merged;
  size_t consulted = 0;
  for (size_t i = 0; i < n; ++i) {
    if (shards[i] == nullptr) continue;
    ++consulted;
    for (BundleSearchResult& hit : per_shard[i]) {
      hit.shard = static_cast<uint32_t>(i);
      merged.push_back(std::move(hit));
    }
    if (event != nullptr) {
      event->shards.push_back(std::move(traces[i]));
    }
  }
  for (const BundleQueryProcessor* shard : shards) {
    if (shard != nullptr && shard->fanout_hist_ != nullptr) {
      shard->fanout_hist_->Observe(consulted);
      break;  // the histogram is shared; one observation per search
    }
  }
  obs::Span merge_span(recorder, "merge", parent_span);
  size_t take = std::min(query.k, merged.size());
  std::partial_sort(merged.begin(), merged.begin() + take, merged.end(),
                    BundleResultOrder{});
  merged.resize(take);
  merge_span.End();
  if (event != nullptr) {
    event->result_count = merged.size();
  }
  return merged;
}

}  // namespace microprov
