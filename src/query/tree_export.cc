#include "query/tree_export.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/string_util.h"

namespace microprov {

namespace {

std::string Truncate(const std::string& text, size_t max_chars) {
  if (text.size() <= max_chars) return text;
  return text.substr(0, max_chars - 3) + "...";
}

// parent id -> children (kInvalidMessageId keys the roots), date-ordered.
std::map<MessageId, std::vector<const BundleMessage*>> BuildChildren(
    const Bundle& bundle) {
  std::map<MessageId, std::vector<const BundleMessage*>> children;
  for (const BundleMessage& bm : bundle.messages()) {
    children[bm.parent].push_back(&bm);
  }
  for (auto& [parent, kids] : children) {
    std::sort(kids.begin(), kids.end(),
              [](const BundleMessage* a, const BundleMessage* b) {
                if (a->msg.date != b->msg.date) {
                  return a->msg.date < b->msg.date;
                }
                return a->msg.id < b->msg.id;
              });
  }
  return children;
}

void RenderSubtree(
    const std::map<MessageId, std::vector<const BundleMessage*>>& children,
    MessageId node_id, const BundleMessage* node, int depth,
    size_t max_text_chars, std::string* out) {
  if (node != nullptr) {
    StringAppendF(out, "%*s", depth * 2, "");
    if (depth > 0) {
      StringAppendF(out, "└─[%s] ",
                    std::string(ConnectionTypeToString(node->conn_type))
                        .c_str());
    }
    StringAppendF(out, "@%s (%s) %s\n", node->msg.user.c_str(),
                  FormatTimestamp(node->msg.date).c_str(),
                  Truncate(node->msg.text, max_text_chars).c_str());
  }
  auto it = children.find(node_id);
  if (it == children.end()) return;
  for (const BundleMessage* child : it->second) {
    RenderSubtree(children, child->msg.id, child, depth + 1,
                  max_text_chars, out);
  }
}

}  // namespace

std::string RenderAsciiTree(const Bundle& bundle, size_t max_text_chars) {
  std::string out = SummarizeBundle(bundle) + "\n";
  auto children = BuildChildren(bundle);
  RenderSubtree(children, kInvalidMessageId, nullptr, -1, max_text_chars,
                &out);
  return out;
}

std::string RenderDot(const Bundle& bundle, size_t max_text_chars) {
  std::string out;
  StringAppendF(&out, "digraph bundle_%llu {\n",
                (unsigned long long)bundle.id());
  out += "  rankdir=TB;\n  node [shape=box, fontsize=9];\n";
  for (const BundleMessage& bm : bundle.messages()) {
    std::string label = StringPrintf(
        "@%s\\n%s", bm.msg.user.c_str(),
        Truncate(bm.msg.text, max_text_chars).c_str());
    // Escape double quotes for DOT.
    std::string escaped;
    for (char c : label) {
      if (c == '"') escaped += "\\\"";
      else escaped.push_back(c);
    }
    StringAppendF(&out, "  m%lld [label=\"%s\"%s];\n",
                  (long long)bm.msg.id, escaped.c_str(),
                  bm.parent == kInvalidMessageId
                      ? ", style=filled, fillcolor=salmon"
                      : "");
  }
  for (const BundleMessage& bm : bundle.messages()) {
    if (bm.parent == kInvalidMessageId) continue;
    StringAppendF(&out, "  m%lld -> m%lld [label=\"%s\"];\n",
                  (long long)bm.parent, (long long)bm.msg.id,
                  std::string(ConnectionTypeToString(bm.conn_type)).c_str());
  }
  out += "}\n";
  return out;
}

std::string SummarizeBundle(const Bundle& bundle, size_t top_words) {
  std::string words;
  for (const auto& [word, count] : bundle.TopKeywords(top_words)) {
    if (!words.empty()) words += ", ";
    words += word;
  }
  return StringPrintf(
      "bundle %llu: %zu msgs, %s .. %s, top: %s",
      (unsigned long long)bundle.id(), bundle.size(),
      FormatTimestamp(bundle.start_time()).c_str(),
      FormatTimestamp(bundle.end_time()).c_str(), words.c_str());
}

}  // namespace microprov
