#include "query/query_plan.h"

#include <algorithm>

#include "core/quality.h"
#include "index/bm25.h"

namespace microprov {

QueryPlan::QueryPlan(const ParsedQuery& parsed,
                     const IndicantDictionary& dict,
                     const SummaryIndex& index, size_t total_bundles,
                     Timestamp now, const QueryWeights& weights,
                     QueryPlanScratch* scratch)
    : dict_(&dict),
      scratch_(scratch),
      weights_(weights),
      now_(now),
      gamma_(1.0 - weights.alpha_text - weights.beta_indicant),
      num_keywords_(parsed.keywords.size()),
      num_indicant_terms_(parsed.hashtags.size() + parsed.urls.size() +
                          parsed.keywords.size()) {
  scratch_->keywords.clear();
  scratch_->hashtags.clear();
  scratch_->urls.clear();

  // Same expression BundleTextScore uses for its normalizer.
  max_idf_ = Bm25Idf(
      static_cast<uint32_t>(std::max<size_t>(total_bundles, 2)), 1);

  double idf_sum = 0.0;       // over keywords resolved in this shard
  double idf_sum_all = 0.0;   // over every keyword (archived bound)
  for (size_t i = 0; i < parsed.keywords.size(); ++i) {
    PlanKeyword term;
    term.keyword = dict.Find(IndicantType::kKeyword, parsed.keywords[i]);
    term.stem_tag = dict.Find(IndicantType::kHashtag, parsed.keywords[i]);
    if (i < parsed.raw_words.size()) {
      term.raw_tag = dict.Find(IndicantType::kHashtag,
                               parsed.raw_words[i]);
    }
    // Same idf expression BundleTextScore evaluates per candidate; a
    // term with no live posting gets df=0 -> max(df,1)=1, but its tf is
    // 0 against every live bundle so the value never enters a sum.
    const size_t df =
        index.DocumentFrequencyId(IndicantType::kKeyword, term.keyword);
    term.idf = Bm25Idf(
        static_cast<uint32_t>(std::max<size_t>(total_bundles, 1)),
        static_cast<uint32_t>(std::max<size_t>(df, 1)));
    if (term.keyword != kInvalidTermId) idf_sum += term.idf;
    idf_sum_all += term.idf;
    scratch_->keywords.push_back(term);
  }
  for (const std::string& tag : parsed.hashtags) {
    scratch_->hashtags.push_back(dict.Find(IndicantType::kHashtag, tag));
  }
  for (const std::string& url : parsed.urls) {
    scratch_->urls.push_back(dict.Find(IndicantType::kUrl, url));
  }

  // Upper bounds per Eq. 7 component. Text: every matching term
  // contributes at most idf (tf/(tf+2) < 1), normalized like TextScore.
  // Indicant closeness: only terms resolvable in this shard can hit a
  // live bundle. Quality: BundleQuality is in [0, 1]. Freshness is
  // added per candidate by UpperBound() (exact, and dropped when the
  // configured weights make gamma negative — the bound must only grow).
  double s_upper = 0.0;
  double s_upper_all = 0.0;
  if (num_keywords_ > 0 && max_idf_ > 0.0) {
    s_upper = idf_sum /
              (static_cast<double>(num_keywords_) * max_idf_);
    s_upper_all = idf_sum_all /
                  (static_cast<double>(num_keywords_) * max_idf_);
  }
  size_t resolvable = 0;
  for (const PlanKeyword& term : scratch_->keywords) {
    if (term.stem_tag != kInvalidTermId ||
        term.raw_tag != kInvalidTermId) {
      ++resolvable;
    }
  }
  for (TermId tag : scratch_->hashtags) {
    if (tag != kInvalidTermId) ++resolvable;
  }
  for (TermId url : scratch_->urls) {
    if (url != kInvalidTermId) ++resolvable;
  }
  double i_upper = 0.0;
  double i_upper_all = 0.0;
  if (num_indicant_terms_ > 0) {
    i_upper = static_cast<double>(resolvable) /
              static_cast<double>(num_indicant_terms_);
    i_upper_all = 1.0;
  }
  const double quality_upper =
      weights.quality_weight > 0.0 ? weights.quality_weight : 0.0;
  static_bound_ = weights.alpha_text * s_upper +
                  weights.beta_indicant * i_upper + quality_upper;
  archived_bound_ = weights.alpha_text * s_upper_all +
                    weights.beta_indicant * i_upper_all + quality_upper +
                    (gamma_ >= 0.0 ? gamma_ : 0.0);
}

double QueryPlan::TextScore(const Bundle& bundle) const {
  // Mirrors BundleTextScore operation for operation (bit-identical
  // doubles are the equivalence contract).
  if (num_keywords_ == 0) return 0.0;
  double score = 0.0;
  for (const PlanKeyword& term : scratch_->keywords) {
    const uint32_t tf =
        bundle.CountOfId(IndicantType::kKeyword, term.keyword);
    if (tf == 0) continue;
    score += term.idf * (static_cast<double>(tf) / (tf + 2.0));
  }
  if (max_idf_ <= 0.0) return 0.0;
  return score / (static_cast<double>(num_keywords_) * max_idf_);
}

double QueryPlan::IndicantScore(const Bundle& bundle) const {
  // Mirrors BundleIndicantScore.
  if (num_indicant_terms_ == 0) return 0.0;
  size_t hits = 0;
  for (TermId tag : scratch_->hashtags) {
    if (bundle.CountOfId(IndicantType::kHashtag, tag) > 0) ++hits;
  }
  for (TermId url : scratch_->urls) {
    if (bundle.CountOfId(IndicantType::kUrl, url) > 0) ++hits;
  }
  for (const PlanKeyword& term : scratch_->keywords) {
    if (bundle.CountOfId(IndicantType::kHashtag, term.stem_tag) > 0 ||
        bundle.CountOfId(IndicantType::kHashtag, term.raw_tag) > 0) {
      ++hits;
    }
  }
  return static_cast<double>(hits) /
         static_cast<double>(num_indicant_terms_);
}

double QueryPlan::Score(const Bundle& bundle) const {
  // Mirrors BundleRelevance: same association order, same gamma
  // expression, quality added afterwards.
  double score =
      weights_.alpha_text * TextScore(bundle) +
      weights_.beta_indicant * IndicantScore(bundle) +
      gamma_ * BundleFreshness(bundle, now_, weights_.time_scale_secs);
  if (weights_.quality_weight > 0.0) {
    score += weights_.quality_weight * BundleQuality(bundle);
  }
  return score;
}

}  // namespace microprov
