#ifndef MICROPROV_QUERY_QUERY_PLAN_H_
#define MICROPROV_QUERY_QUERY_PLAN_H_

#include <cstdint>
#include <vector>

#include "core/bundle.h"
#include "core/indicant_dictionary.h"
#include "core/summary_index.h"
#include "query/bundle_ranker.h"

namespace microprov {

/// One query keyword, resolved once per query into the shard's TermId
/// spaces: the stem in the keyword space (text score) plus the stem and
/// raw surface form in the hashtag space (a bare word may name a tag).
/// kInvalidTermId marks a form the shard never interned — its postings
/// lookup and per-candidate count are guaranteed zero.
struct PlanKeyword {
  TermId keyword = kInvalidTermId;
  TermId stem_tag = kInvalidTermId;
  TermId raw_tag = kInvalidTermId;
  /// Bm25Idf for the keyword term, computed once per query (the string
  /// path recomputed it per candidate).
  double idf = 0.0;
};

/// Reusable buffers behind a QueryPlan; keep one per thread and the
/// steady-state plan build allocates nothing.
struct QueryPlanScratch {
  std::vector<PlanKeyword> keywords;
  std::vector<TermId> hashtags;
  std::vector<TermId> urls;
};

/// The id-native evaluation plan for one (query, shard) pair: terms
/// resolved to the shard dictionary's TermIds, per-term IDF and the
/// normalization constants precomputed, and the MaxScore-style upper
/// bound folded into one constant plus a per-candidate freshness term.
///
/// Score() is arithmetic-identical to BundleRelevance() for bundles
/// stamped by the plan's dictionary — same operations in the same order
/// — so the optimized path returns byte-identical scores to the string
/// path (the equivalence suite pins this). UpperBound() dominates
/// Score() for those bundles: text is bounded by Σidf/(n·max_idf)
/// (tf/(tf+2) < 1), indicant closeness by resolvable/total, quality by
/// its weight (BundleQuality is in [0,1]), and freshness is evaluated
/// exactly — it is O(1) per candidate.
class QueryPlan {
 public:
  /// Builds the plan against one shard's dictionary + summary index.
  /// All referenced objects must outlive the plan; `scratch` backs the
  /// term vectors (one plan per scratch at a time).
  QueryPlan(const ParsedQuery& parsed, const IndicantDictionary& dict,
            const SummaryIndex& index, size_t total_bundles,
            Timestamp now, const QueryWeights& weights,
            QueryPlanScratch* scratch);

  /// Exact Eq. 7 relevance via TermId-keyed counts. `bundle` must be
  /// stamped by the plan's dictionary (live pool bundles are; archived
  /// bundles decode with private dictionaries — score those with
  /// BundleRelevance instead).
  double Score(const Bundle& bundle) const;

  /// Cheap dominating bound on Score(bundle): the per-query static head
  /// plus the exact freshness term. Candidates whose bound cannot beat
  /// the current kth score are skipped without touching their summaries.
  double UpperBound(const Bundle& bundle) const {
    const double fresh =
        gamma_ * BundleFreshness(bundle, now_, weights_.time_scale_secs);
    return static_bound_ + (gamma_ >= 0.0 ? fresh : 0.0);
  }

  /// Bound on the score of ANY archived bundle, usable before decoding
  /// it: archived bundles score through the string path, where even
  /// terms this shard never interned can match, so the text/indicant
  /// heads assume every query term hits (and freshness <= 1).
  double ArchivedUpperBound() const { return archived_bound_; }

  const IndicantDictionary& dictionary() const { return *dict_; }

  const std::vector<PlanKeyword>& keywords() const {
    return scratch_->keywords;
  }
  const std::vector<TermId>& hashtags() const { return scratch_->hashtags; }
  const std::vector<TermId>& urls() const { return scratch_->urls; }

 private:
  double TextScore(const Bundle& bundle) const;
  double IndicantScore(const Bundle& bundle) const;

  const IndicantDictionary* dict_;
  QueryPlanScratch* scratch_;
  QueryWeights weights_;
  Timestamp now_ = 0;
  double gamma_ = 0.0;
  /// Bm25Idf(max(total_bundles,2), 1) — the text-score normalizer.
  double max_idf_ = 0.0;
  size_t num_keywords_ = 0;
  size_t num_indicant_terms_ = 0;  // hashtags + urls + keywords
  /// α·s_upper + β·i_upper + quality_weight (freshness added per call).
  double static_bound_ = 0.0;
  double archived_bound_ = 0.0;
};

}  // namespace microprov

#endif  // MICROPROV_QUERY_QUERY_PLAN_H_
