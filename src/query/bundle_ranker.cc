#include "query/bundle_ranker.h"

#include <algorithm>
#include <cmath>

#include "core/quality.h"
#include "index/bm25.h"
#include "text/stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace microprov {

ParsedQuery ParseQuery(const std::string& query) {
  ParsedQuery out;
  for (Token& tok : Tokenize(query)) {
    switch (tok.type) {
      case TokenType::kHashtag:
        out.hashtags.push_back(std::move(tok.value));
        break;
      case TokenType::kUrl:
        out.urls.push_back(std::move(tok.value));
        break;
      case TokenType::kWord:
        if (!IsStopword(tok.value)) {
          out.keywords.push_back(PorterStem(tok.value));
          out.raw_words.push_back(std::move(tok.value));
        }
        break;
      case TokenType::kMention:
        break;
    }
  }
  return out;
}

double BundleTextScore(const ParsedQuery& query, const Bundle& bundle,
                       const SummaryIndex& index, size_t total_bundles) {
  if (query.keywords.empty()) return 0.0;
  double score = 0.0;
  for (const std::string& term : query.keywords) {
    const uint32_t tf = bundle.CountOf(IndicantType::kKeyword, term);
    if (tf == 0) continue;
    const size_t df =
        index.DocumentFrequency(IndicantType::kKeyword, term);
    const double idf =
        Bm25Idf(static_cast<uint32_t>(std::max<size_t>(total_bundles, 1)),
                static_cast<uint32_t>(std::max<size_t>(df, 1)));
    // Saturating tf so giant bundles don't dominate purely by volume.
    score += idf * (static_cast<double>(tf) / (tf + 2.0));
  }
  // Normalize to [0, ~1] by query length and a typical idf magnitude.
  const double max_idf =
      Bm25Idf(static_cast<uint32_t>(std::max<size_t>(total_bundles, 2)), 1);
  if (max_idf <= 0.0) return 0.0;
  return score / (static_cast<double>(query.keywords.size()) * max_idf);
}

double BundleIndicantScore(const ParsedQuery& query, const Bundle& bundle) {
  size_t total = query.hashtags.size() + query.urls.size() +
                 query.keywords.size();
  if (total == 0) return 0.0;
  size_t hits = 0;
  for (const std::string& tag : query.hashtags) {
    if (bundle.CountOf(IndicantType::kHashtag, tag) > 0) ++hits;
  }
  for (const std::string& url : query.urls) {
    if (bundle.CountOf(IndicantType::kUrl, url) > 0) ++hits;
  }
  // Plain words often name hashtags ("yankee redsox" -> #redsox); match
  // both the raw surface form and the stem.
  for (size_t i = 0; i < query.keywords.size(); ++i) {
    if (bundle.CountOf(IndicantType::kHashtag, query.keywords[i]) > 0 ||
        (i < query.raw_words.size() &&
         bundle.CountOf(IndicantType::kHashtag, query.raw_words[i]) > 0)) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(total);
}

double BundleFreshness(const Bundle& bundle, Timestamp now,
                       double scale_secs) {
  const double age = static_cast<double>(
      std::max<Timestamp>(0, now - bundle.last_update()));
  return 1.0 / (age / scale_secs + 1.0);
}

double BundleRelevance(const ParsedQuery& query, const Bundle& bundle,
                       const SummaryIndex& index, size_t total_bundles,
                       Timestamp now, const QueryWeights& weights) {
  const double gamma = 1.0 - weights.alpha_text - weights.beta_indicant;
  double score =
      weights.alpha_text *
          BundleTextScore(query, bundle, index, total_bundles) +
      weights.beta_indicant * BundleIndicantScore(query, bundle) +
      gamma * BundleFreshness(bundle, now, weights.time_scale_secs);
  if (weights.quality_weight > 0.0) {
    score += weights.quality_weight * BundleQuality(bundle);
  }
  return score;
}

}  // namespace microprov
