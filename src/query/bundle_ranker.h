#ifndef MICROPROV_QUERY_BUNDLE_RANKER_H_
#define MICROPROV_QUERY_BUNDLE_RANKER_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "core/bundle.h"
#include "core/summary_index.h"

namespace microprov {

/// Eq. 7 weights: r(q,B) = α·s(q,B) + β·i(q,B) + (1−α−β)·t(B), with
/// α, β in [0,1], α+β <= 1.
struct QueryWeights {
  /// α: textual relevance (BM25-style over bundle keyword summaries).
  double alpha_text = 0.5;
  /// β: indicant closeness (query terms hitting bundle hashtags/URLs).
  double beta_indicant = 0.3;
  /// Freshness decay scale for t(B).
  double time_scale_secs = static_cast<double>(kSecondsPerDay);
  /// Extension beyond Eq. 7 (off by default): adds
  /// quality_weight · BundleQuality(B), implementing the paper's
  /// "Quality Identification" benefit at ranking time so feedback-rich
  /// bundles outrank fresh-but-noise singletons.
  double quality_weight = 0.0;
};

/// Parses free-text queries into match terms: words are stemmed and
/// stopword-filtered like message keywords; '#tag' and URL tokens are kept
/// as indicant terms.
struct ParsedQuery {
  /// Stemmed content words (match message keywords).
  std::vector<std::string> keywords;
  /// The same words unstemmed (match hashtags, which are stored raw:
  /// a query for "yankees" must reach "#yankees" even though the
  /// keyword stem is "yanke").
  std::vector<std::string> raw_words;
  std::vector<std::string> hashtags;
  std::vector<std::string> urls;

  bool empty() const {
    return keywords.empty() && hashtags.empty() && urls.empty();
  }
};

ParsedQuery ParseQuery(const std::string& query);

/// s(q,B): text relevance of the query against the bundle's keyword
/// summary, IDF-weighted using bundle-level document frequencies from the
/// summary index (`total_bundles` = live pool size).
double BundleTextScore(const ParsedQuery& query, const Bundle& bundle,
                       const SummaryIndex& index, size_t total_bundles);

/// i(q,B): fraction of the query's indicant terms (hashtags, URLs, plus
/// keywords doubling as hashtags) present in the bundle's summaries.
double BundleIndicantScore(const ParsedQuery& query, const Bundle& bundle);

/// t(B): freshness of the bundle's last update relative to `now`.
double BundleFreshness(const Bundle& bundle, Timestamp now,
                       double scale_secs);

/// Eq. 7 composite.
double BundleRelevance(const ParsedQuery& query, const Bundle& bundle,
                       const SummaryIndex& index, size_t total_bundles,
                       Timestamp now, const QueryWeights& weights);

}  // namespace microprov

#endif  // MICROPROV_QUERY_BUNDLE_RANKER_H_
