#include "recovery/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/coding.h"
#include "common/env.h"
#include "common/string_util.h"
#include "storage/log_reader.h"
#include "stream/message_codec.h"

namespace microprov {
namespace recovery {

namespace {
constexpr uint32_t kWalRecordVersion = 1;

std::string SegmentPath(const std::string& dir, uint64_t epoch,
                        uint32_t part) {
  return dir + "/" +
         StringPrintf("wal-%010" PRIu64 "-%06u.log", epoch, part);
}
}  // namespace

bool ParseWalSegmentName(const std::string& name, uint64_t* epoch,
                         uint32_t* part) {
  // wal-<10 digits>-<6 digits>.log
  unsigned long long e = 0;
  unsigned int p = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "wal-%10llu-%6u.log%n", &e, &p,
                  &consumed) != 2 ||
      static_cast<size_t>(consumed) != name.size()) {
    return false;
  }
  *epoch = e;
  *part = p;
  return true;
}

StatusOr<std::vector<WalSegment>> ListWalSegments(const std::string& dir) {
  std::vector<WalSegment> segments;
  if (!Env::Default()->FileExists(dir)) return segments;
  auto names_or = Env::Default()->ListDir(dir);
  if (!names_or.ok()) return names_or.status();
  for (const std::string& name : *names_or) {
    WalSegment segment;
    if (!ParseWalSegmentName(name, &segment.epoch, &segment.part)) {
      continue;
    }
    segment.path = dir + "/" + name;
    segments.push_back(std::move(segment));
  }
  std::sort(segments.begin(), segments.end(),
            [](const WalSegment& a, const WalSegment& b) {
              return a.epoch != b.epoch ? a.epoch < b.epoch
                                        : a.part < b.part;
            });
  return segments;
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(
    const WalOptions& options, uint64_t epoch) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("wal dir must be set");
  }
  MICROPROV_RETURN_IF_ERROR(
      Env::Default()->CreateDirIfMissing(options.dir));
  auto writer =
      std::unique_ptr<WalWriter>(new WalWriter(options, epoch));
  // Never reuse a file a previous process may have torn: place the new
  // part after everything already on disk for this epoch.
  auto segments_or = ListWalSegments(options.dir);
  if (!segments_or.ok()) return segments_or.status();
  for (const WalSegment& segment : *segments_or) {
    if (segment.epoch == epoch && segment.part >= writer->next_part_) {
      writer->next_part_ = segment.part + 1;
    }
  }
  MICROPROV_RETURN_IF_ERROR(writer->OpenSegment());
  return writer;
}

Status WalWriter::OpenSegment() {
  const std::string path =
      SegmentPath(options_.dir, epoch_, next_part_);
  auto file_or = Env::Default()->NewWritableFile(path);
  if (!file_or.ok()) return file_or.status();
  writer_ = std::make_unique<log::Writer>(std::move(*file_or));
  current_segment_bytes_ = 0;
  ++next_part_;
  // Make the directory entry durable before the first record lands in
  // it (satellite of the rotation-durability fix in BundleStore).
  return Env::Default()->SyncDir(options_.dir);
}

Status WalWriter::Append(const Message& msg) {
  if (current_segment_bytes_ >= options_.rotate_bytes) {
    MICROPROV_RETURN_IF_ERROR(writer_->Close());
    MICROPROV_RETURN_IF_ERROR(OpenSegment());
  }
  scratch_.clear();
  PutVarint32(&scratch_, kWalRecordVersion);
  EncodeMessageBinary(msg, &scratch_);
  MICROPROV_RETURN_IF_ERROR(writer_->AddRecord(scratch_));
  if (options_.sync_every_append) {
    MICROPROV_RETURN_IF_ERROR(writer_->Sync());
  } else if (options_.flush_every_append) {
    MICROPROV_RETURN_IF_ERROR(writer_->Flush());
  }
  current_segment_bytes_ = writer_->CurrentOffset();
  appended_bytes_ += scratch_.size();
  return Status::OK();
}

Status WalWriter::RotateToEpoch(uint64_t epoch) {
  MICROPROV_RETURN_IF_ERROR(writer_->Close());
  epoch_ = epoch;
  next_part_ = 0;
  return OpenSegment();
}

Status WalWriter::Sync() { return writer_->Sync(); }

Status WalWriter::Close() { return writer_->Close(); }

Status ReplayWal(const std::string& dir, uint64_t after_epoch,
                 const std::function<Status(Message&&)>& fn,
                 WalReplayStats* stats) {
  auto segments_or = ListWalSegments(dir);
  if (!segments_or.ok()) return segments_or.status();
  for (const WalSegment& segment : *segments_or) {
    if (segment.epoch <= after_epoch) continue;
    auto file_or = Env::Default()->NewSequentialFile(segment.path);
    if (!file_or.ok()) return file_or.status();
    log::Reader reader(std::move(*file_or));
    std::string record;
    while (reader.ReadRecord(&record).ok()) {
      std::string_view input(record);
      uint32_t version = 0;
      if (!GetVarint32(&input, &version) ||
          version != kWalRecordVersion) {
        return Status::Corruption("wal record: bad version in " +
                                  segment.path);
      }
      Message msg;
      MICROPROV_RETURN_IF_ERROR(DecodeMessageBinary(&input, &msg));
      if (stats != nullptr) ++stats->messages;
      MICROPROV_RETURN_IF_ERROR(fn(std::move(msg)));
    }
    if (stats != nullptr) {
      stats->torn_tail_bytes += reader.torn_tail_bytes();
      stats->dropped_bytes +=
          reader.dropped_bytes() - reader.torn_tail_bytes();
    }
  }
  return Status::OK();
}

Status RemoveWalSegmentsThrough(const std::string& dir,
                                uint64_t through_epoch) {
  auto segments_or = ListWalSegments(dir);
  if (!segments_or.ok()) return segments_or.status();
  bool removed = false;
  for (const WalSegment& segment : *segments_or) {
    if (segment.epoch > through_epoch) continue;
    MICROPROV_RETURN_IF_ERROR(Env::Default()->RemoveFile(segment.path));
    removed = true;
  }
  if (removed) {
    MICROPROV_RETURN_IF_ERROR(Env::Default()->SyncDir(dir));
  }
  return Status::OK();
}

}  // namespace recovery
}  // namespace microprov
