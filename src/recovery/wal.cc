#include "recovery/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/coding.h"
#include "common/env.h"
#include "common/string_util.h"
#include "storage/log_reader.h"
#include "stream/message_codec.h"

namespace microprov {
namespace recovery {

namespace {
/// v1: varint version + message (no sequence; pre-group-commit).
/// v2: varint version + varint sequence + message.
constexpr uint32_t kWalRecordVersionLegacy = 1;
constexpr uint32_t kWalRecordVersion = 2;

std::string SegmentPath(const std::string& dir, uint64_t epoch,
                        uint32_t part) {
  return dir + "/" +
         StringPrintf("wal-%010" PRIu64 "-%06u.log", epoch, part);
}
}  // namespace

void EncodeWalRecord(uint64_t seq, const Message& msg, std::string* dst) {
  PutVarint32(dst, kWalRecordVersion);
  PutVarint64(dst, seq);
  EncodeMessageBinary(msg, dst);
}

Status DecodeWalRecord(std::string_view payload, uint64_t* seq,
                       Message* msg) {
  uint32_t version = 0;
  if (!GetVarint32(&payload, &version)) {
    return Status::Corruption("wal record: truncated version");
  }
  if (version == kWalRecordVersionLegacy) {
    *seq = 0;
  } else if (version == kWalRecordVersion) {
    if (!GetVarint64(&payload, seq)) {
      return Status::Corruption("wal record: truncated sequence");
    }
  } else {
    return Status::Corruption("wal record: unknown version");
  }
  return DecodeMessageBinary(&payload, msg);
}

bool ParseWalSegmentName(const std::string& name, uint64_t* epoch,
                         uint32_t* part) {
  // wal-<10 digits>-<6 digits>.log
  unsigned long long e = 0;
  unsigned int p = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "wal-%10llu-%6u.log%n", &e, &p,
                  &consumed) != 2 ||
      static_cast<size_t>(consumed) != name.size()) {
    return false;
  }
  *epoch = e;
  *part = p;
  return true;
}

StatusOr<std::vector<WalSegment>> ListWalSegments(const std::string& dir) {
  std::vector<WalSegment> segments;
  if (!Env::Default()->FileExists(dir)) return segments;
  auto names_or = Env::Default()->ListDir(dir);
  if (!names_or.ok()) return names_or.status();
  for (const std::string& name : *names_or) {
    WalSegment segment;
    if (!ParseWalSegmentName(name, &segment.epoch, &segment.part)) {
      continue;
    }
    segment.path = dir + "/" + name;
    segments.push_back(std::move(segment));
  }
  std::sort(segments.begin(), segments.end(),
            [](const WalSegment& a, const WalSegment& b) {
              return a.epoch != b.epoch ? a.epoch < b.epoch
                                        : a.part < b.part;
            });
  return segments;
}

StatusOr<uint32_t> NextFreeWalPart(const std::string& dir,
                                   uint64_t epoch) {
  auto segments_or = ListWalSegments(dir);
  if (!segments_or.ok()) return segments_or.status();
  uint32_t next = 0;
  for (const WalSegment& segment : *segments_or) {
    if (segment.epoch == epoch && segment.part >= next) {
      next = segment.part + 1;
    }
  }
  return next;
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(
    const WalOptions& options, uint64_t epoch) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("wal dir must be set");
  }
  MICROPROV_RETURN_IF_ERROR(
      Env::Default()->CreateDirIfMissing(options.dir));
  auto writer =
      std::unique_ptr<WalWriter>(new WalWriter(options, epoch));
  // Never reuse a file a previous process may have torn: place the new
  // part after everything already on disk for this epoch.
  auto part_or = NextFreeWalPart(options.dir, epoch);
  if (!part_or.ok()) return part_or.status();
  writer->next_part_ = *part_or;
  MICROPROV_RETURN_IF_ERROR(writer->OpenSegment());
  return writer;
}

Status WalWriter::OpenSegment() {
  const std::string path =
      SegmentPath(options_.dir, epoch_, next_part_);
  auto file_or = Env::Default()->NewWritableFile(path);
  if (!file_or.ok()) return file_or.status();
  writer_ = std::make_unique<log::Writer>(std::move(*file_or));
  ++next_part_;
  // Make the directory entry durable before the first record lands in
  // it (satellite of the rotation-durability fix in BundleStore).
  return Env::Default()->SyncDir(options_.dir);
}

Status WalWriter::AppendFramed(std::string_view payload) {
  const uint64_t before = writer_->CurrentOffset();
  MICROPROV_RETURN_IF_ERROR(writer_->AddRecord(payload));
  // Offset delta, not payload size: frame headers and block padding are
  // real bytes on disk and must show up in the byte accounting.
  appended_bytes_ += writer_->CurrentOffset() - before;
  // Rotate as soon as the segment crosses the configured size — not on
  // the next append — so an idle log never sits on an oversized open
  // segment and the size bound holds to within one record.
  if (writer_->CurrentOffset() >= options_.rotate_bytes) {
    MICROPROV_RETURN_IF_ERROR(writer_->Close());
    MICROPROV_RETURN_IF_ERROR(OpenSegment());
  }
  return Status::OK();
}

Status WalWriter::Append(uint64_t seq, const Message& msg) {
  scratch_.clear();
  EncodeWalRecord(seq, msg, &scratch_);
  MICROPROV_RETURN_IF_ERROR(AppendFramed(scratch_));
  if (options_.sync_every_append) {
    MICROPROV_RETURN_IF_ERROR(writer_->Sync());
  } else if (options_.flush_every_append) {
    MICROPROV_RETURN_IF_ERROR(writer_->Flush());
  }
  return Status::OK();
}

Status WalWriter::AppendEncoded(std::string_view payload) {
  return AppendFramed(payload);
}

Status WalWriter::RotateToEpoch(uint64_t epoch) {
  MICROPROV_RETURN_IF_ERROR(writer_->Close());
  epoch_ = epoch;
  // Same never-clobber scan as Open: a crash between a predecessor's
  // rotation and its checkpoint GC can leave `wal-<epoch>-000000.log`
  // on disk; starting at part 0 unconditionally would overwrite it.
  auto part_or = NextFreeWalPart(options_.dir, epoch);
  if (!part_or.ok()) return part_or.status();
  next_part_ = *part_or;
  return OpenSegment();
}

Status WalWriter::Flush() { return writer_->Flush(); }

Status WalWriter::Sync() { return writer_->Sync(); }

Status WalWriter::Close() { return writer_->Close(); }

StatusOr<std::vector<WalTailRecord>> ReadWalTail(const std::string& dir,
                                                 uint64_t after_epoch,
                                                 WalReplayStats* stats) {
  auto segments_or = ListWalSegments(dir);
  if (!segments_or.ok()) return segments_or.status();
  std::vector<WalTailRecord> out;
  std::vector<const WalSegment*> replayable;
  for (const WalSegment& segment : *segments_or) {
    if (segment.epoch > after_epoch) replayable.push_back(&segment);
  }
  for (size_t s = 0; s < replayable.size(); ++s) {
    const WalSegment& segment = *replayable[s];
    auto file_or = Env::Default()->NewSequentialFile(segment.path);
    if (!file_or.ok()) return file_or.status();
    log::Reader reader(std::move(*file_or));
    std::string record;
    while (true) {
      Status read = reader.ReadRecord(&record);
      if (read.IsNotFound()) break;  // clean end of segment
      MICROPROV_RETURN_IF_ERROR(read);
      WalTailRecord tail;
      tail.epoch = segment.epoch;
      tail.part = segment.part;
      MICROPROV_RETURN_IF_ERROR(
          DecodeWalRecord(record, &tail.seq, &tail.msg));
      out.push_back(std::move(tail));
      if (stats != nullptr) ++stats->messages;
    }
    const uint64_t torn = reader.torn_tail_bytes();
    const uint64_t interior = reader.dropped_bytes() - torn;
    if (interior > 0) {
      if (stats != nullptr) stats->dropped_bytes += interior;
      return Status::Corruption(StringPrintf(
          "wal: %" PRIu64 " bytes of interior corruption in %s",
          interior, segment.path.c_str()));
    }
    if (torn > 0) {
      if (stats != nullptr) stats->torn_tail_bytes += torn;
      // A torn tail is the residue of a crash mid-append, which can
      // only exist in the last file a writer had open. Anywhere else it
      // means records are missing from the middle of the stream.
      if (s + 1 != replayable.size()) {
        return Status::Corruption(StringPrintf(
            "wal: torn tail (%" PRIu64 " bytes) in non-final segment %s",
            torn, segment.path.c_str()));
      }
    }
  }
  return out;
}

Status ReplayWal(const std::string& dir, uint64_t after_epoch,
                 const std::function<Status(Message&&)>& fn,
                 WalReplayStats* stats) {
  auto records_or = ReadWalTail(dir, after_epoch, stats);
  if (!records_or.ok()) return records_or.status();
  for (WalTailRecord& record : *records_or) {
    MICROPROV_RETURN_IF_ERROR(fn(std::move(record.msg)));
  }
  return Status::OK();
}

Status RemoveWalSegmentsThrough(const std::string& dir,
                                uint64_t through_epoch) {
  auto segments_or = ListWalSegments(dir);
  if (!segments_or.ok()) return segments_or.status();
  bool removed = false;
  for (const WalSegment& segment : *segments_or) {
    if (segment.epoch > through_epoch) continue;
    MICROPROV_RETURN_IF_ERROR(Env::Default()->RemoveFile(segment.path));
    removed = true;
  }
  if (removed) {
    MICROPROV_RETURN_IF_ERROR(Env::Default()->SyncDir(dir));
  }
  return Status::OK();
}

}  // namespace recovery
}  // namespace microprov
