#ifndef MICROPROV_RECOVERY_SNAPSHOT_H_
#define MICROPROV_RECOVERY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/statusor.h"
#include "core/engine_state.h"

namespace microprov {
namespace recovery {

/// One shard's checkpointed state: the engine's durable state plus the
/// shard clock watermark, so replayed messages age bundles exactly as
/// the original ingest did.
struct ShardSnapshot {
  Timestamp clock = 0;
  EngineState state;

  ShardSnapshot() = default;
  ShardSnapshot(ShardSnapshot&&) = default;
  ShardSnapshot& operator=(ShardSnapshot&&) = default;
};

/// Full-service checkpoint image: every shard plus service-level
/// watermarks. `accepted` counts messages accepted by Service::Ingest
/// up to the checkpoint barrier (== sum of shard ingested counts, kept
/// explicitly so recovery can report progress without touching shards).
struct ServiceSnapshot {
  uint32_t num_shards = 0;
  Timestamp watermark = 0;
  uint64_t accepted = 0;
  std::vector<ShardSnapshot> shards;

  ServiceSnapshot() = default;
  ServiceSnapshot(ServiceSnapshot&&) = default;
  ServiceSnapshot& operator=(ServiceSnapshot&&) = default;
};

/// Appends the binary encoding of `state` to *dst. Bundles are framed
/// with the existing EncodeBundle record format, so the snapshot
/// inherits the pinned bundle wire format unchanged.
void EncodeEngineState(const EngineState& state, std::string* dst);

/// Decodes one EngineState from the front of *input.
Status DecodeEngineState(std::string_view* input, EngineState* state);

/// Serializes a full checkpoint image: magic + version header, the
/// shard states, and a masked crc32c trailer covering everything before
/// it. A snapshot that fails the CRC (torn or bit-rotted) is rejected
/// as a whole — checkpoints are atomic via write-temp-then-rename, so a
/// valid older snapshot is always the fallback.
void EncodeServiceSnapshot(const ServiceSnapshot& snapshot,
                           std::string* dst);
StatusOr<ServiceSnapshot> DecodeServiceSnapshot(std::string_view encoded);

}  // namespace recovery
}  // namespace microprov

#endif  // MICROPROV_RECOVERY_SNAPSHOT_H_
