#ifndef MICROPROV_RECOVERY_SNAPSHOT_H_
#define MICROPROV_RECOVERY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/statusor.h"
#include "core/engine_state.h"

namespace microprov {
namespace recovery {

/// One shard's checkpointed state: the engine's durable state plus the
/// shard clock watermark, so replayed messages age bundles exactly as
/// the original ingest did.
struct ShardSnapshot {
  Timestamp clock = 0;
  EngineState state;

  ShardSnapshot() = default;
  ShardSnapshot(ShardSnapshot&&) = default;
  ShardSnapshot& operator=(ShardSnapshot&&) = default;
};

/// Full-service checkpoint image: every shard plus service-level
/// watermarks. `accepted` counts messages accepted by Service::Ingest
/// up to the checkpoint barrier (== sum of shard ingested counts, kept
/// explicitly so recovery can report progress without touching shards).
struct ServiceSnapshot {
  uint32_t num_shards = 0;
  Timestamp watermark = 0;
  uint64_t accepted = 0;
  std::vector<ShardSnapshot> shards;

  ServiceSnapshot() = default;
  ServiceSnapshot(ServiceSnapshot&&) = default;
  ServiceSnapshot& operator=(ServiceSnapshot&&) = default;
};

/// Appends the binary encoding of `state` to *dst. Bundles are framed
/// with the existing EncodeBundle record format, so the snapshot
/// inherits the pinned bundle wire format unchanged.
void EncodeEngineState(const EngineState& state, std::string* dst);

/// Decodes one EngineState from the front of *input.
Status DecodeEngineState(std::string_view* input, EngineState* state);

/// Serializes a full checkpoint image: magic + version header, the
/// shard states, and a masked crc32c trailer covering everything before
/// it. A snapshot that fails the CRC (torn or bit-rotted) is rejected
/// as a whole — checkpoints are atomic via write-temp-then-rename, so a
/// valid older snapshot is always the fallback.
void EncodeServiceSnapshot(const ServiceSnapshot& snapshot,
                           std::string* dst);
StatusOr<ServiceSnapshot> DecodeServiceSnapshot(std::string_view encoded);

/// One shard's slice of an incremental checkpoint: the clock watermark
/// at the delta barrier plus the engine's changes since the previous
/// checkpoint in the chain.
struct ShardDelta {
  Timestamp clock = 0;
  EngineDelta delta;

  ShardDelta() = default;
  ShardDelta(ShardDelta&&) = default;
  ShardDelta& operator=(ShardDelta&&) = default;
};

/// An incremental checkpoint: everything that changed since checkpoint
/// `parent_seq`. Resolving base + deltas in sequence order via
/// ApplyServiceDelta reproduces the ServiceSnapshot a full checkpoint
/// would have written at the last delta's barrier.
struct ServiceDelta {
  /// Sequence of the checkpoint this delta extends (chain guard: a
  /// delta only applies on top of the image it was exported against).
  uint64_t parent_seq = 0;
  uint32_t num_shards = 0;
  Timestamp watermark = 0;
  uint64_t accepted = 0;
  std::vector<ShardDelta> shards;

  ServiceDelta() = default;
  ServiceDelta(ServiceDelta&&) = default;
  ServiceDelta& operator=(ServiceDelta&&) = default;
};

/// Appends the binary encoding of `delta` to *dst (exposed so the
/// format tests can pin it; the service-level framing below is what the
/// checkpoint files use).
void EncodeEngineDelta(const EngineDelta& delta, std::string* dst);
Status DecodeEngineDelta(std::string_view* input, EngineDelta* delta);

/// Serializes an incremental checkpoint: "MPDL" magic + version header,
/// the parent link, per-shard clock + EngineDelta, and a masked crc32c
/// trailer. Same atomicity contract as EncodeServiceSnapshot — a delta
/// failing its CRC is rejected whole, and recovery falls back to the
/// valid chain prefix plus WAL replay (WAL segments are only collected
/// at full-checkpoint installs, so the tail is always still on disk).
void EncodeServiceDelta(const ServiceDelta& delta, std::string* dst);
StatusOr<ServiceDelta> DecodeServiceDelta(std::string_view encoded);

/// Folds `delta` into `snapshot` in place. Fails on shard-count
/// mismatch or when any shard's term cursor does not line up with the
/// base image (a mis-chained or skipped delta).
Status ApplyServiceDelta(ServiceSnapshot* snapshot, ServiceDelta&& delta);

}  // namespace recovery
}  // namespace microprov

#endif  // MICROPROV_RECOVERY_SNAPSHOT_H_
