#ifndef MICROPROV_RECOVERY_CHECKPOINT_H_
#define MICROPROV_RECOVERY_CHECKPOINT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "obs/metrics.h"
#include "recovery/snapshot.h"
#include "recovery/wal.h"

namespace microprov {
namespace recovery {

/// Where the group-commit flusher is when the flush-phase test hook
/// fires. Crash-injection tests SIGKILL themselves inside the hook to
/// exercise each window of the durability protocol.
enum class WalFlushPhase {
  /// A batch was dequeued from the append buffers but nothing has been
  /// written yet: these records die with the process, and the durable
  /// watermark still excludes them.
  kDequeued,
  /// Part of the batch (some shards) has been written, the rest has
  /// not: the written prefix is an un-watermarked WAL tail.
  kMidBatch,
  /// The whole batch is written and flushed but the durable watermark
  /// has not been published: recovery sees records past the watermark
  /// base and must still apply them (they are contiguous).
  kPrePublish,
};

/// Knobs for the Service's durability layer.
struct DurabilityOptions {
  /// Root directory: `CURRENT`, `checkpoint-<seq>.snap`,
  /// `checkpoint-<seq>.delta`, and `wal/shard-<i>/` live here. Empty
  /// disables durability entirely.
  std::string dir;
  /// Log every accepted message before applying it. Off gives
  /// checkpoint-only durability (loss window = since last checkpoint).
  bool wal_enabled = true;
  uint64_t wal_rotate_bytes = 8ull << 20;
  bool wal_flush_every_append = true;
  bool wal_sync_every_append = false;
  /// Group-commit window: accepted records buffer in memory and the
  /// flusher thread sweeps them at this cadence (worst-case
  /// acceptance-to-durability lag is ~2 windows: one poll plus one
  /// accumulation linger), or as soon as `wal_group_commit_bytes` of
  /// encoded records are pending. Barriers (Flush/Drain/Checkpoint)
  /// kick the flusher and never wait out the window. 0 degenerates to
  /// write-per-wakeup (still batched under load). The default trades a
  /// few milliseconds of watermark lag for ~4x fewer flusher wakeups
  /// and per-shard flush syscalls than a 1ms window — on small hosts
  /// those wakeups preempt the shard workers and show up directly as
  /// ingest throughput loss.
  uint64_t wal_group_commit_interval_us = 4000;
  uint64_t wal_group_commit_bytes = 256ull << 10;
  /// Backpressure: EnqueueAppend blocks once this many un-flushed bytes
  /// are pending, bounding the acceptance-to-durability window.
  uint64_t wal_max_pending_bytes = 4ull << 20;
  /// Service::Ingest triggers a checkpoint once this many messages have
  /// been accepted since the last one (0 = only explicit Checkpoint()
  /// calls and Drain).
  uint64_t checkpoint_every_messages = 0;
  /// Write periodic checkpoints as deltas (changes since the previous
  /// checkpoint) instead of full images. Every `full_checkpoint_every`th
  /// install is still a full base snapshot, bounding both the recovery
  /// chain and WAL retention (segments are only collected at base
  /// installs).
  bool incremental_checkpoints = true;
  uint64_t full_checkpoint_every = 8;

  /// Test-only: invoked by the flusher thread at each WalFlushPhase so
  /// crash-injection tests can SIGKILL inside a specific window.
  std::function<void(WalFlushPhase)> wal_flush_phase_hook_for_test;

  bool enabled() const { return !dir.empty(); }
};

/// Disk mechanics of crash recovery, shared by every shard: the
/// checkpoint manifest (`CURRENT` naming the installed sequence, one
/// atomically-renamed `checkpoint-<seq>.snap` or `.delta` per install),
/// the per-shard WAL writers behind a group-commit flusher thread, and
/// the truncation/GC protocol that keeps them consistent.
///
/// Epochs tie checkpoints and WAL together: WAL segments written after
/// checkpoint S carry epoch S+1, and installing checkpoint S+1 rotates
/// writers to epoch S+2. Garbage collection of superseded WAL epochs
/// runs only at *base* installs, so while a delta chain grows the full
/// WAL tail since the base stays on disk — a checkpoint file lost to
/// bit-rot degrades recovery to "base + valid delta prefix + WAL
/// replay", never to data loss.
///
/// Group commit decouples acceptance from disk: Ingest's thread
/// enqueues encoded records (EnqueueAppend) and the flusher writes them
/// in batches, publishing a durable-sequence watermark that
/// WaitDurable() blocks on. Acceptance sequences travel inside the v2
/// WAL records; recovery trims replay to the contiguous watermark and
/// dedupes records across crash incarnations last-writer-wins.
///
/// Thread contract: EnqueueAppend has a single producer (the Service's
/// mutex); WaitDurable may be called from that same producer;
/// everything else (Open/replay/install/Close) is serialized by the
/// Service. The flusher thread is internal.
class DurabilityManager {
 public:
  /// Opens (creating dirs as needed) and resolves the newest recoverable
  /// checkpoint image: the newest base snapshot that passes its CRC,
  /// extended with every contiguous delta that decodes, chains from it,
  /// and applies cleanly. Does not open WAL writers — the owner replays
  /// first, then calls StartWal().
  static StatusOr<std::unique_ptr<DurabilityManager>> Open(
      const DurabilityOptions& options, uint32_t num_shards,
      obs::MetricsRegistry* registry);

  ~DurabilityManager();

  /// Sequence of the resolved/last-installed checkpoint (0 = none).
  uint64_t checkpoint_seq() const { return seq_; }
  /// Sequence of the last full (base) snapshot in the chain (0 = none).
  uint64_t base_checkpoint_seq() const { return base_seq_; }

  bool has_snapshot() const { return has_snapshot_; }
  /// Moves the resolved snapshot out (valid once, when has_snapshot()).
  ServiceSnapshot TakeSnapshot();

  /// Reads shard `i`'s WAL tail (epochs after the resolved checkpoint)
  /// in append order, with sequence and provenance per record. Interior
  /// corruption or a torn tail in a non-final segment fails with
  /// Corruption (see ReadWalTail).
  StatusOr<std::vector<WalTailRecord>> ReadShardTail(uint32_t shard);
  /// Records that `n` replayed messages were applied (stats + metric).
  void NoteReplayed(uint64_t n);
  const WalReplayStats& replay_stats() const { return replay_stats_; }

  /// Opens the per-shard WAL writers at the post-checkpoint epoch and
  /// starts the group-commit flusher. `durable_floor` is the acceptance
  /// sequence everything already recovered is durable through; the
  /// watermark starts there. Call after replay; no-op when the WAL is
  /// disabled.
  Status StartWal(uint64_t durable_floor);
  bool wal_started() const { return !writers_.empty(); }

  /// Hands one accepted message to the group-commit flusher. `seq` is
  /// the service acceptance sequence (strictly increasing; the single
  /// producer guarantees order). Blocks on backpressure when the
  /// pending buffer is full; returns the flusher's latched error if the
  /// WAL has failed. The record is NOT durable when this returns — use
  /// WaitDurable().
  Status EnqueueAppend(uint32_t shard, uint64_t seq, const Message& msg);

  /// Blocks until the durable watermark reaches `seq` (every record
  /// with sequence <= seq is written to the WAL, per the flush/sync
  /// policy) or the flusher fails. No-op when the WAL is not started.
  Status WaitDurable(uint64_t seq);
  uint64_t durable_seq();

  // Flusher-lag telemetry for shard health (lock-free; callable from
  // the scrape path while ingest runs).

  /// Encoded WAL bytes accepted for `shard` but not yet written by the
  /// flusher (includes bytes of a batch currently being written, so a
  /// flusher stuck mid-WriteBatch still shows as pending). 0 when the
  /// WAL is disabled or not started.
  uint64_t PendingShardBytes(uint32_t shard) const;

  /// Nanoseconds since the flusher last completed a sweep (idle poll or
  /// batch write), or -1 when the flusher is not running. A large age
  /// with pending bytes means the flusher is stuck, not idle.
  int64_t FlusherHeartbeatAgeNanos() const;

  /// True when the next periodic checkpoint should be an incremental
  /// delta (a base exists and the chain is shorter than
  /// full_checkpoint_every).
  bool ShouldInstallDelta() const;

  /// Installs `snapshot` as full base checkpoint seq+1: durably writes
  /// the snapshot file, rotates WAL writers to the next epoch, flips
  /// CURRENT, then garbage-collects superseded checkpoints, deltas, and
  /// WAL epochs. The caller must have quiesced ingest, waited for
  /// WaitDurable(accepted), and synced the bundle stores first.
  Status InstallCheckpoint(const ServiceSnapshot& snapshot);

  /// Installs `delta` as incremental checkpoint seq+1 (delta.parent_seq
  /// must equal checkpoint_seq()). Same barrier contract as
  /// InstallCheckpoint, but no garbage collection: superseded WAL
  /// epochs are retained until the next base install so a corrupt delta
  /// file can always be recovered past by replay.
  Status InstallDelta(const ServiceDelta& delta);

  /// Stops the flusher (draining any pending records) and closes the
  /// WAL writers.
  Status Close();

  const DurabilityOptions& options() const { return options_; }
  std::string ShardWalDir(uint32_t shard) const;

 private:
  DurabilityManager(const DurabilityOptions& options, uint32_t num_shards)
      : options_(options), num_shards_(num_shards) {}

  std::string CheckpointPath(uint64_t seq) const;
  std::string DeltaPath(uint64_t seq) const;
  Status LoadLatestCheckpoint();
  Status GarbageCollect();
  Status InstallFile(const std::string& path, std::string_view encoded);
  void FlusherLoop();
  /// Writes one stolen batch (per-shard flat buffers of fixed32-length-
  /// prefixed record payloads): appends every record, then one
  /// flush/sync per touched shard. Called without buf_mu_ held.
  Status WriteBatch(const std::vector<std::string>& batch);

  DurabilityOptions options_;
  uint32_t num_shards_;
  uint64_t seq_ = 0;
  uint64_t base_seq_ = 0;
  bool has_snapshot_ = false;
  ServiceSnapshot snapshot_;
  /// Guards writers_ against the install-time epoch rotation racing the
  /// flusher's appends. (Install runs behind a WaitDurable barrier, so
  /// the buffers are empty, but the flusher thread may still be awake.)
  std::mutex writers_mu_;
  std::vector<std::unique_ptr<WalWriter>> writers_;
  WalReplayStats replay_stats_;

  // Group-commit state, guarded by buf_mu_.
  std::mutex buf_mu_;
  std::condition_variable flusher_cv_;   // wakes the flusher
  std::condition_variable durable_cv_;   // watermark advanced / error
  std::condition_variable space_cv_;     // backpressure released
  /// Per-shard flat buffers of fixed32-length-prefixed encoded record
  /// payloads awaiting the flusher. Flat strings instead of
  /// vector<string> queues: records encode in place behind a patched
  /// length slot (zero allocations or copies in steady state), and the
  /// flusher swaps in equally-sized drained buffers so capacity is
  /// recycled between batches.
  std::vector<std::string> pending_;
  uint64_t pending_bytes_ = 0;
  uint64_t pending_records_ = 0;
  /// Highest acceptance sequence enqueued (single producer => every
  /// record with sequence <= this is in pending_ or already written).
  uint64_t last_enqueued_seq_ = 0;
  /// Highest acceptance sequence known written per the flush policy.
  uint64_t durable_seq_ = 0;
  /// First flusher failure; latched, fails all later appends/waits.
  Status flusher_error_;
  bool flusher_kick_ = false;
  bool flusher_stop_ = false;
  std::thread flusher_;

  /// Per-shard framed bytes enqueued minus bytes the flusher has
  /// written — unlike pending_bytes_, these are decremented only AFTER
  /// WriteBatch succeeds, and they are atomics readable off-lock by the
  /// health path. Allocated in StartWal.
  std::unique_ptr<std::atomic<uint64_t>[]> shard_pending_bytes_;
  /// Monotonic time of the flusher's last completed sweep (0 = not
  /// running).
  std::atomic<int64_t> flusher_heartbeat_nanos_{0};

  // Observability handles (null without a registry; never owned).
  obs::Counter* appends_counter_ = nullptr;
  obs::Counter* append_bytes_counter_ = nullptr;
  obs::Counter* flushes_counter_ = nullptr;
  obs::HistogramMetric* flush_batch_hist_ = nullptr;
  obs::HistogramMetric* flush_hist_ = nullptr;
  obs::Counter* checkpoints_counter_ = nullptr;
  obs::Counter* delta_checkpoints_counter_ = nullptr;
  obs::HistogramMetric* checkpoint_hist_ = nullptr;
  obs::Counter* checkpoint_bytes_counter_ = nullptr;
  obs::Counter* delta_bytes_counter_ = nullptr;
  obs::Counter* replayed_counter_ = nullptr;
  obs::Counter* torn_bytes_counter_ = nullptr;
  obs::Counter* dropped_bytes_counter_ = nullptr;
};

}  // namespace recovery
}  // namespace microprov

#endif  // MICROPROV_RECOVERY_CHECKPOINT_H_
