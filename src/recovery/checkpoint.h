#ifndef MICROPROV_RECOVERY_CHECKPOINT_H_
#define MICROPROV_RECOVERY_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "obs/metrics.h"
#include "recovery/snapshot.h"
#include "recovery/wal.h"

namespace microprov {
namespace recovery {

/// Knobs for the Service's durability layer.
struct DurabilityOptions {
  /// Root directory: `CURRENT`, `checkpoint-<seq>.snap`, and
  /// `wal/shard-<i>/` live here. Empty disables durability entirely.
  std::string dir;
  /// Log every accepted message before applying it. Off gives
  /// checkpoint-only durability (loss window = since last checkpoint).
  bool wal_enabled = true;
  uint64_t wal_rotate_bytes = 8ull << 20;
  bool wal_flush_every_append = true;
  bool wal_sync_every_append = false;
  /// Service::Ingest triggers a checkpoint once this many messages have
  /// been accepted since the last one (0 = only explicit Checkpoint()
  /// calls and Drain).
  uint64_t checkpoint_every_messages = 0;

  bool enabled() const { return !dir.empty(); }
};

/// Disk mechanics of crash recovery, shared by every shard: the
/// checkpoint manifest (`CURRENT` naming the installed sequence, one
/// atomically-renamed `checkpoint-<seq>.snap` per install), the
/// per-shard WAL writers, and the truncation/GC protocol that keeps
/// them consistent.
///
/// Epochs tie the two together: WAL segments written after checkpoint S
/// carry epoch S+1, and installing checkpoint S+1 rotates writers to
/// epoch S+2 before deleting epochs <= S+1. Every crash window is
/// covered: until `CURRENT` flips to S+1, recovery loads S and replays
/// epochs S+1 and S+2 — the same messages the lost in-memory state
/// held, reapplied by deterministic per-shard ingest.
///
/// Not thread-safe; the Service serializes all calls under its mutex.
class DurabilityManager {
 public:
  /// Opens (creating dirs as needed) and loads the newest checkpoint
  /// that passes its CRC, if any. Does not open WAL writers — the
  /// owner replays first, then calls StartWal().
  static StatusOr<std::unique_ptr<DurabilityManager>> Open(
      const DurabilityOptions& options, uint32_t num_shards,
      obs::MetricsRegistry* registry);

  /// Sequence of the loaded/last-installed checkpoint (0 = none).
  uint64_t checkpoint_seq() const { return seq_; }

  bool has_snapshot() const { return has_snapshot_; }
  /// Moves the loaded snapshot out (valid once, when has_snapshot()).
  ServiceSnapshot TakeSnapshot();

  /// Replays shard `i`'s WAL tail (epochs after the loaded checkpoint)
  /// through `fn` in append order. Torn tails read as clean EOF.
  Status ReplayShard(uint32_t shard,
                     const std::function<Status(Message&&)>& fn);
  const WalReplayStats& replay_stats() const { return replay_stats_; }

  /// Opens the per-shard WAL writers at the post-checkpoint epoch.
  /// Call after replay; no-op when the WAL is disabled.
  Status StartWal();
  bool wal_started() const { return !writers_.empty(); }

  /// Appends one accepted message to shard `i`'s WAL.
  Status Append(uint32_t shard, const Message& msg);
  Status SyncWal();

  /// Installs `snapshot` as checkpoint seq+1: durably writes the
  /// snapshot file, rotates WAL writers to the next epoch, flips
  /// CURRENT, then garbage-collects superseded checkpoints and WAL
  /// epochs. The caller must have quiesced ingest (flush barrier) and
  /// synced the bundle stores first.
  Status InstallCheckpoint(const ServiceSnapshot& snapshot);

  Status Close();

  const DurabilityOptions& options() const { return options_; }
  std::string ShardWalDir(uint32_t shard) const;

 private:
  DurabilityManager(const DurabilityOptions& options, uint32_t num_shards)
      : options_(options), num_shards_(num_shards) {}

  std::string CheckpointPath(uint64_t seq) const;
  Status LoadLatestCheckpoint();
  Status GarbageCollect();

  DurabilityOptions options_;
  uint32_t num_shards_;
  uint64_t seq_ = 0;
  bool has_snapshot_ = false;
  ServiceSnapshot snapshot_;
  std::vector<std::unique_ptr<WalWriter>> writers_;
  WalReplayStats replay_stats_;

  // Observability handles (null without a registry; never owned).
  obs::Counter* appends_counter_ = nullptr;
  obs::Counter* append_bytes_counter_ = nullptr;
  obs::HistogramMetric* append_hist_ = nullptr;
  obs::Counter* checkpoints_counter_ = nullptr;
  obs::HistogramMetric* checkpoint_hist_ = nullptr;
  obs::Counter* checkpoint_bytes_counter_ = nullptr;
  obs::Counter* replayed_counter_ = nullptr;
  obs::Counter* torn_bytes_counter_ = nullptr;
  obs::Counter* dropped_bytes_counter_ = nullptr;
};

}  // namespace recovery
}  // namespace microprov

#endif  // MICROPROV_RECOVERY_CHECKPOINT_H_
