#include "recovery/snapshot.h"

#include "common/coding.h"
#include "common/crc32c.h"
#include "storage/bundle_codec.h"

namespace microprov {
namespace recovery {

namespace {
// "MPSN" little-endian: microprov snapshot.
constexpr uint32_t kSnapshotMagic = 0x4e53504d;
constexpr uint32_t kSnapshotVersion = 1;
constexpr uint32_t kEngineStateVersion = 1;
}  // namespace

void EncodeEngineState(const EngineState& state, std::string* dst) {
  PutVarint32(dst, kEngineStateVersion);
  PutVarint64(dst, state.messages_ingested);
  PutVarint64(dst, state.next_bundle_id);
  PutVarint64(dst, state.pool_stats.bundles_created);
  PutVarint64(dst, state.pool_stats.bundles_deleted_tiny);
  PutVarint64(dst, state.pool_stats.bundles_dumped_closed);
  PutVarint64(dst, state.pool_stats.bundles_evicted_ranked);
  PutVarint64(dst, state.pool_stats.refinement_runs);
  PutVarint64(dst, state.pool_stats.bundles_closed);
  for (int t = 0; t < kNumIndicantTypes; ++t) {
    PutVarint32(dst, static_cast<uint32_t>(state.terms[t].size()));
    for (const std::string& term : state.terms[t]) {
      PutLengthPrefixed(dst, term);
    }
  }
  PutVarint32(dst, static_cast<uint32_t>(state.bundles.size()));
  std::string encoded;
  for (const std::unique_ptr<Bundle>& bundle : state.bundles) {
    encoded.clear();
    EncodeBundle(*bundle, &encoded);
    PutLengthPrefixed(dst, encoded);
  }
}

Status DecodeEngineState(std::string_view* input, EngineState* state) {
  uint32_t version = 0;
  if (!GetVarint32(input, &version)) {
    return Status::Corruption("engine state: truncated version");
  }
  if (version != kEngineStateVersion) {
    return Status::Corruption("engine state: unknown version");
  }
  uint64_t next_id = 0;
  if (!GetVarint64(input, &state->messages_ingested) ||
      !GetVarint64(input, &next_id) ||
      !GetVarint64(input, &state->pool_stats.bundles_created) ||
      !GetVarint64(input, &state->pool_stats.bundles_deleted_tiny) ||
      !GetVarint64(input, &state->pool_stats.bundles_dumped_closed) ||
      !GetVarint64(input, &state->pool_stats.bundles_evicted_ranked) ||
      !GetVarint64(input, &state->pool_stats.refinement_runs) ||
      !GetVarint64(input, &state->pool_stats.bundles_closed)) {
    return Status::Corruption("engine state: truncated header");
  }
  state->next_bundle_id = next_id;
  for (int t = 0; t < kNumIndicantTypes; ++t) {
    uint32_t count = 0;
    if (!GetVarint32(input, &count)) {
      return Status::Corruption("engine state: truncated term count");
    }
    state->terms[t].clear();
    state->terms[t].reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string_view term;
      if (!GetLengthPrefixed(input, &term)) {
        return Status::Corruption("engine state: truncated term");
      }
      state->terms[t].emplace_back(term);
    }
  }
  uint32_t num_bundles = 0;
  if (!GetVarint32(input, &num_bundles)) {
    return Status::Corruption("engine state: truncated bundle count");
  }
  state->bundles.clear();
  state->bundles.reserve(num_bundles);
  for (uint32_t i = 0; i < num_bundles; ++i) {
    std::string_view encoded;
    if (!GetLengthPrefixed(input, &encoded)) {
      return Status::Corruption("engine state: truncated bundle");
    }
    auto bundle_or = DecodeBundle(encoded);
    if (!bundle_or.ok()) return bundle_or.status();
    state->bundles.push_back(std::move(*bundle_or));
  }
  return Status::OK();
}

void EncodeServiceSnapshot(const ServiceSnapshot& snapshot,
                           std::string* dst) {
  const size_t start = dst->size();
  PutFixed32(dst, kSnapshotMagic);
  PutVarint32(dst, kSnapshotVersion);
  PutVarint32(dst, snapshot.num_shards);
  PutVarsint64(dst, snapshot.watermark);
  PutVarint64(dst, snapshot.accepted);
  for (const ShardSnapshot& shard : snapshot.shards) {
    PutVarsint64(dst, shard.clock);
    EncodeEngineState(shard.state, dst);
  }
  const uint32_t crc = crc32c::Value(
      std::string_view(dst->data() + start, dst->size() - start));
  PutFixed32(dst, crc32c::Mask(crc));
}

StatusOr<ServiceSnapshot> DecodeServiceSnapshot(std::string_view encoded) {
  if (encoded.size() < sizeof(uint32_t) * 2) {
    return Status::Corruption("snapshot: too short");
  }
  std::string_view body = encoded.substr(0, encoded.size() - 4);
  std::string_view trailer = encoded.substr(encoded.size() - 4);
  uint32_t masked_crc = 0;
  if (!GetFixed32(&trailer, &masked_crc)) {
    return Status::Corruption("snapshot: bad trailer");
  }
  if (crc32c::Unmask(masked_crc) != crc32c::Value(body)) {
    return Status::Corruption("snapshot: crc mismatch");
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  ServiceSnapshot snapshot;
  if (!GetFixed32(&body, &magic) || magic != kSnapshotMagic) {
    return Status::Corruption("snapshot: bad magic");
  }
  if (!GetVarint32(&body, &version) || version != kSnapshotVersion) {
    return Status::Corruption("snapshot: unknown version");
  }
  if (!GetVarint32(&body, &snapshot.num_shards) ||
      !GetVarsint64(&body, &snapshot.watermark) ||
      !GetVarint64(&body, &snapshot.accepted)) {
    return Status::Corruption("snapshot: truncated header");
  }
  snapshot.shards.reserve(snapshot.num_shards);
  for (uint32_t i = 0; i < snapshot.num_shards; ++i) {
    ShardSnapshot shard;
    if (!GetVarsint64(&body, &shard.clock)) {
      return Status::Corruption("snapshot: truncated shard clock");
    }
    MICROPROV_RETURN_IF_ERROR(DecodeEngineState(&body, &shard.state));
    snapshot.shards.push_back(std::move(shard));
  }
  if (!body.empty()) {
    return Status::Corruption("snapshot: trailing bytes");
  }
  return snapshot;
}

}  // namespace recovery
}  // namespace microprov
