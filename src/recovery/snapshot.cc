#include "recovery/snapshot.h"

#include "common/coding.h"
#include "common/crc32c.h"
#include "storage/bundle_codec.h"

namespace microprov {
namespace recovery {

namespace {
// "MPSN" little-endian: microprov snapshot.
constexpr uint32_t kSnapshotMagic = 0x4e53504d;
constexpr uint32_t kSnapshotVersion = 1;
constexpr uint32_t kEngineStateVersion = 1;
// "MPDL" little-endian: microprov delta.
constexpr uint32_t kDeltaMagic = 0x4c44504d;
constexpr uint32_t kDeltaVersion = 1;
constexpr uint32_t kEngineDeltaVersion = 1;
}  // namespace

void EncodeEngineState(const EngineState& state, std::string* dst) {
  PutVarint32(dst, kEngineStateVersion);
  PutVarint64(dst, state.messages_ingested);
  PutVarint64(dst, state.next_bundle_id);
  PutVarint64(dst, state.pool_stats.bundles_created);
  PutVarint64(dst, state.pool_stats.bundles_deleted_tiny);
  PutVarint64(dst, state.pool_stats.bundles_dumped_closed);
  PutVarint64(dst, state.pool_stats.bundles_evicted_ranked);
  PutVarint64(dst, state.pool_stats.refinement_runs);
  PutVarint64(dst, state.pool_stats.bundles_closed);
  for (int t = 0; t < kNumIndicantTypes; ++t) {
    PutVarint32(dst, static_cast<uint32_t>(state.terms[t].size()));
    for (const std::string& term : state.terms[t]) {
      PutLengthPrefixed(dst, term);
    }
  }
  PutVarint32(dst, static_cast<uint32_t>(state.bundles.size()));
  std::string encoded;
  for (const std::unique_ptr<Bundle>& bundle : state.bundles) {
    encoded.clear();
    EncodeBundle(*bundle, &encoded);
    PutLengthPrefixed(dst, encoded);
  }
}

Status DecodeEngineState(std::string_view* input, EngineState* state) {
  uint32_t version = 0;
  if (!GetVarint32(input, &version)) {
    return Status::Corruption("engine state: truncated version");
  }
  if (version != kEngineStateVersion) {
    return Status::Corruption("engine state: unknown version");
  }
  uint64_t next_id = 0;
  if (!GetVarint64(input, &state->messages_ingested) ||
      !GetVarint64(input, &next_id) ||
      !GetVarint64(input, &state->pool_stats.bundles_created) ||
      !GetVarint64(input, &state->pool_stats.bundles_deleted_tiny) ||
      !GetVarint64(input, &state->pool_stats.bundles_dumped_closed) ||
      !GetVarint64(input, &state->pool_stats.bundles_evicted_ranked) ||
      !GetVarint64(input, &state->pool_stats.refinement_runs) ||
      !GetVarint64(input, &state->pool_stats.bundles_closed)) {
    return Status::Corruption("engine state: truncated header");
  }
  state->next_bundle_id = next_id;
  for (int t = 0; t < kNumIndicantTypes; ++t) {
    uint32_t count = 0;
    if (!GetVarint32(input, &count)) {
      return Status::Corruption("engine state: truncated term count");
    }
    state->terms[t].clear();
    state->terms[t].reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string_view term;
      if (!GetLengthPrefixed(input, &term)) {
        return Status::Corruption("engine state: truncated term");
      }
      state->terms[t].emplace_back(term);
    }
  }
  uint32_t num_bundles = 0;
  if (!GetVarint32(input, &num_bundles)) {
    return Status::Corruption("engine state: truncated bundle count");
  }
  state->bundles.clear();
  state->bundles.reserve(num_bundles);
  for (uint32_t i = 0; i < num_bundles; ++i) {
    std::string_view encoded;
    if (!GetLengthPrefixed(input, &encoded)) {
      return Status::Corruption("engine state: truncated bundle");
    }
    auto bundle_or = DecodeBundle(encoded);
    if (!bundle_or.ok()) return bundle_or.status();
    state->bundles.push_back(std::move(*bundle_or));
  }
  return Status::OK();
}

void EncodeServiceSnapshot(const ServiceSnapshot& snapshot,
                           std::string* dst) {
  const size_t start = dst->size();
  PutFixed32(dst, kSnapshotMagic);
  PutVarint32(dst, kSnapshotVersion);
  PutVarint32(dst, snapshot.num_shards);
  PutVarsint64(dst, snapshot.watermark);
  PutVarint64(dst, snapshot.accepted);
  for (const ShardSnapshot& shard : snapshot.shards) {
    PutVarsint64(dst, shard.clock);
    EncodeEngineState(shard.state, dst);
  }
  const uint32_t crc = crc32c::Value(
      std::string_view(dst->data() + start, dst->size() - start));
  PutFixed32(dst, crc32c::Mask(crc));
}

StatusOr<ServiceSnapshot> DecodeServiceSnapshot(std::string_view encoded) {
  if (encoded.size() < sizeof(uint32_t) * 2) {
    return Status::Corruption("snapshot: too short");
  }
  std::string_view body = encoded.substr(0, encoded.size() - 4);
  std::string_view trailer = encoded.substr(encoded.size() - 4);
  uint32_t masked_crc = 0;
  if (!GetFixed32(&trailer, &masked_crc)) {
    return Status::Corruption("snapshot: bad trailer");
  }
  if (crc32c::Unmask(masked_crc) != crc32c::Value(body)) {
    return Status::Corruption("snapshot: crc mismatch");
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  ServiceSnapshot snapshot;
  if (!GetFixed32(&body, &magic) || magic != kSnapshotMagic) {
    return Status::Corruption("snapshot: bad magic");
  }
  if (!GetVarint32(&body, &version) || version != kSnapshotVersion) {
    return Status::Corruption("snapshot: unknown version");
  }
  if (!GetVarint32(&body, &snapshot.num_shards) ||
      !GetVarsint64(&body, &snapshot.watermark) ||
      !GetVarint64(&body, &snapshot.accepted)) {
    return Status::Corruption("snapshot: truncated header");
  }
  snapshot.shards.reserve(snapshot.num_shards);
  for (uint32_t i = 0; i < snapshot.num_shards; ++i) {
    ShardSnapshot shard;
    if (!GetVarsint64(&body, &shard.clock)) {
      return Status::Corruption("snapshot: truncated shard clock");
    }
    MICROPROV_RETURN_IF_ERROR(DecodeEngineState(&body, &shard.state));
    snapshot.shards.push_back(std::move(shard));
  }
  if (!body.empty()) {
    return Status::Corruption("snapshot: trailing bytes");
  }
  return snapshot;
}

void EncodeEngineDelta(const EngineDelta& delta, std::string* dst) {
  PutVarint32(dst, kEngineDeltaVersion);
  PutVarint64(dst, delta.messages_ingested);
  PutVarint64(dst, delta.next_bundle_id);
  PutVarint64(dst, delta.pool_stats.bundles_created);
  PutVarint64(dst, delta.pool_stats.bundles_deleted_tiny);
  PutVarint64(dst, delta.pool_stats.bundles_dumped_closed);
  PutVarint64(dst, delta.pool_stats.bundles_evicted_ranked);
  PutVarint64(dst, delta.pool_stats.refinement_runs);
  PutVarint64(dst, delta.pool_stats.bundles_closed);
  for (int t = 0; t < kNumIndicantTypes; ++t) {
    PutVarint32(dst, delta.base_terms[t]);
    PutVarint32(dst, static_cast<uint32_t>(delta.new_terms[t].size()));
    for (const std::string& term : delta.new_terms[t]) {
      PutLengthPrefixed(dst, term);
    }
  }
  PutVarint32(dst, static_cast<uint32_t>(delta.removed.size()));
  for (BundleId id : delta.removed) PutVarint64(dst, id);
  PutVarint32(dst, static_cast<uint32_t>(delta.bundles.size()));
  std::string encoded;
  for (const std::unique_ptr<Bundle>& bundle : delta.bundles) {
    encoded.clear();
    EncodeBundle(*bundle, &encoded);
    PutLengthPrefixed(dst, encoded);
  }
}

Status DecodeEngineDelta(std::string_view* input, EngineDelta* delta) {
  uint32_t version = 0;
  if (!GetVarint32(input, &version)) {
    return Status::Corruption("engine delta: truncated version");
  }
  if (version != kEngineDeltaVersion) {
    return Status::Corruption("engine delta: unknown version");
  }
  uint64_t next_id = 0;
  if (!GetVarint64(input, &delta->messages_ingested) ||
      !GetVarint64(input, &next_id) ||
      !GetVarint64(input, &delta->pool_stats.bundles_created) ||
      !GetVarint64(input, &delta->pool_stats.bundles_deleted_tiny) ||
      !GetVarint64(input, &delta->pool_stats.bundles_dumped_closed) ||
      !GetVarint64(input, &delta->pool_stats.bundles_evicted_ranked) ||
      !GetVarint64(input, &delta->pool_stats.refinement_runs) ||
      !GetVarint64(input, &delta->pool_stats.bundles_closed)) {
    return Status::Corruption("engine delta: truncated header");
  }
  delta->next_bundle_id = next_id;
  for (int t = 0; t < kNumIndicantTypes; ++t) {
    uint32_t count = 0;
    if (!GetVarint32(input, &delta->base_terms[t]) ||
        !GetVarint32(input, &count)) {
      return Status::Corruption("engine delta: truncated term count");
    }
    delta->new_terms[t].clear();
    delta->new_terms[t].reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string_view term;
      if (!GetLengthPrefixed(input, &term)) {
        return Status::Corruption("engine delta: truncated term");
      }
      delta->new_terms[t].emplace_back(term);
    }
  }
  uint32_t num_removed = 0;
  if (!GetVarint32(input, &num_removed)) {
    return Status::Corruption("engine delta: truncated removal count");
  }
  delta->removed.clear();
  delta->removed.reserve(num_removed);
  for (uint32_t i = 0; i < num_removed; ++i) {
    uint64_t id = 0;
    if (!GetVarint64(input, &id)) {
      return Status::Corruption("engine delta: truncated removal id");
    }
    delta->removed.push_back(id);
  }
  uint32_t num_bundles = 0;
  if (!GetVarint32(input, &num_bundles)) {
    return Status::Corruption("engine delta: truncated bundle count");
  }
  delta->bundles.clear();
  delta->bundles.reserve(num_bundles);
  for (uint32_t i = 0; i < num_bundles; ++i) {
    std::string_view encoded;
    if (!GetLengthPrefixed(input, &encoded)) {
      return Status::Corruption("engine delta: truncated bundle");
    }
    auto bundle_or = DecodeBundle(encoded);
    if (!bundle_or.ok()) return bundle_or.status();
    delta->bundles.push_back(std::move(*bundle_or));
  }
  return Status::OK();
}

void EncodeServiceDelta(const ServiceDelta& delta, std::string* dst) {
  const size_t start = dst->size();
  PutFixed32(dst, kDeltaMagic);
  PutVarint32(dst, kDeltaVersion);
  PutVarint64(dst, delta.parent_seq);
  PutVarint32(dst, delta.num_shards);
  PutVarsint64(dst, delta.watermark);
  PutVarint64(dst, delta.accepted);
  for (const ShardDelta& shard : delta.shards) {
    PutVarsint64(dst, shard.clock);
    EncodeEngineDelta(shard.delta, dst);
  }
  const uint32_t crc = crc32c::Value(
      std::string_view(dst->data() + start, dst->size() - start));
  PutFixed32(dst, crc32c::Mask(crc));
}

StatusOr<ServiceDelta> DecodeServiceDelta(std::string_view encoded) {
  if (encoded.size() < sizeof(uint32_t) * 2) {
    return Status::Corruption("delta: too short");
  }
  std::string_view body = encoded.substr(0, encoded.size() - 4);
  std::string_view trailer = encoded.substr(encoded.size() - 4);
  uint32_t masked_crc = 0;
  if (!GetFixed32(&trailer, &masked_crc)) {
    return Status::Corruption("delta: bad trailer");
  }
  if (crc32c::Unmask(masked_crc) != crc32c::Value(body)) {
    return Status::Corruption("delta: crc mismatch");
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  ServiceDelta delta;
  if (!GetFixed32(&body, &magic) || magic != kDeltaMagic) {
    return Status::Corruption("delta: bad magic");
  }
  if (!GetVarint32(&body, &version) || version != kDeltaVersion) {
    return Status::Corruption("delta: unknown version");
  }
  if (!GetVarint64(&body, &delta.parent_seq) ||
      !GetVarint32(&body, &delta.num_shards) ||
      !GetVarsint64(&body, &delta.watermark) ||
      !GetVarint64(&body, &delta.accepted)) {
    return Status::Corruption("delta: truncated header");
  }
  delta.shards.reserve(delta.num_shards);
  for (uint32_t i = 0; i < delta.num_shards; ++i) {
    ShardDelta shard;
    if (!GetVarsint64(&body, &shard.clock)) {
      return Status::Corruption("delta: truncated shard clock");
    }
    MICROPROV_RETURN_IF_ERROR(DecodeEngineDelta(&body, &shard.delta));
    delta.shards.push_back(std::move(shard));
  }
  if (!body.empty()) {
    return Status::Corruption("delta: trailing bytes");
  }
  return delta;
}

Status ApplyServiceDelta(ServiceSnapshot* snapshot, ServiceDelta&& delta) {
  if (snapshot->num_shards != delta.num_shards ||
      snapshot->shards.size() != delta.shards.size()) {
    return Status::Corruption("delta: shard count mismatch");
  }
  for (size_t i = 0; i < delta.shards.size(); ++i) {
    snapshot->shards[i].clock = delta.shards[i].clock;
    MICROPROV_RETURN_IF_ERROR(ApplyEngineDelta(
        &snapshot->shards[i].state, std::move(delta.shards[i].delta)));
  }
  snapshot->watermark = delta.watermark;
  snapshot->accepted = delta.accepted;
  return Status::OK();
}

}  // namespace recovery
}  // namespace microprov
