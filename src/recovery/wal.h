#ifndef MICROPROV_RECOVERY_WAL_H_
#define MICROPROV_RECOVERY_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/log_writer.h"
#include "stream/message.h"

namespace microprov {
namespace recovery {

/// Knobs for one shard's write-ahead log.
struct WalOptions {
  /// Directory holding this shard's segments (created if missing).
  std::string dir;
  /// Start a new segment part once the current one exceeds this.
  uint64_t rotate_bytes = 8ull << 20;
  /// Push each flush batch into the page cache (fwrite + fflush).
  /// Survives SIGKILL — the kernel still owns the bytes — but not power
  /// loss.
  bool flush_every_append = true;
  /// Full fsync per flush batch: power-loss durable, ~100x slower. Off
  /// by default; checkpoints fsync regardless, bounding loss to the WAL
  /// tail since the last checkpoint.
  bool sync_every_append = false;
  /// Group-commit window (consumed by the DurabilityManager's flusher
  /// thread, not by WalWriter itself): buffered records are written out
  /// at least every `group_commit_interval_us` microseconds, or as soon
  /// as `group_commit_bytes` of encoded records are pending.
  uint64_t group_commit_interval_us = 1000;
  uint64_t group_commit_bytes = 256ull << 10;
};

/// One WAL segment file. Segments are named
/// `wal-<epoch:010>-<part:06>.log`: `epoch` is the checkpoint sequence
/// the records follow (records in epoch E come after checkpoint E-1 and
/// are folded into checkpoint E), `part` counts size rotations within
/// the epoch. Replay order is (epoch, part) ascending.
struct WalSegment {
  uint64_t epoch = 0;
  uint32_t part = 0;
  std::string path;
};

/// Appends the v2 WAL record encoding of (`seq`, `msg`) to *dst:
/// varint version, varint sequence number, then the binary message.
/// `seq` is the service-global acceptance sequence; recovery uses it to
/// trim replay to the contiguous durable watermark and to dedupe
/// records across crash incarnations.
void EncodeWalRecord(uint64_t seq, const Message& msg, std::string* dst);

/// Decodes one WAL record payload. v2 records carry their sequence;
/// legacy v1 records (pre-group-commit) decode with *seq = 0, meaning
/// "no sequence recorded — unconditionally durable in file order".
Status DecodeWalRecord(std::string_view payload, uint64_t* seq,
                       Message* msg);

/// Appends accepted messages for one shard, framed with the same
/// block/CRC format as the bundle store logs (storage/log_format.h).
/// Single-writer; the DurabilityManager's flusher thread (or the test
/// harness) serializes all appends. A writer never appends to a
/// pre-existing file: Open and every rotation start a fresh part, so a
/// torn tail from a previous process is always the last frame of a
/// dead file.
class WalWriter {
 public:
  /// Opens a writer for `epoch`, starting a new part after any existing
  /// segments of that epoch. Creates the directory (fsyncing it, so the
  /// new entries survive power loss).
  static StatusOr<std::unique_ptr<WalWriter>> Open(
      const WalOptions& options, uint64_t epoch);

  /// Appends one message record carrying its acceptance sequence, then
  /// applies the per-append flush/sync policy. Rotates parts by size.
  Status Append(uint64_t seq, const Message& msg);

  /// Appends one already-encoded record payload (EncodeWalRecord) with
  /// NO flush — the group-commit flusher batches many of these and then
  /// calls Flush()/Sync() once per window. Rotates parts by size.
  Status AppendEncoded(std::string_view payload);

  /// Switches future appends to `epoch` (post-checkpoint truncation
  /// boundary): closes the current segment and opens a fresh part of
  /// the new epoch, scanning past any segment a predecessor process
  /// already left under that epoch (never clobber: the predecessor's
  /// rotation may not have been garbage-collected yet).
  Status RotateToEpoch(uint64_t epoch);

  Status Flush();
  Status Sync();
  Status Close();

  uint64_t epoch() const { return epoch_; }
  /// Bytes this writer added to its segments (all epochs), accounted
  /// from file-offset deltas so frame headers and block padding are
  /// included — this matches on-disk segment sizes exactly.
  uint64_t appended_bytes() const { return appended_bytes_; }

 private:
  WalWriter(const WalOptions& options, uint64_t epoch)
      : options_(options), epoch_(epoch) {}
  Status OpenSegment();
  Status AppendFramed(std::string_view payload);

  WalOptions options_;
  uint64_t epoch_;
  uint32_t next_part_ = 0;
  std::unique_ptr<log::Writer> writer_;
  uint64_t appended_bytes_ = 0;
  std::string scratch_;
};

/// Parses `name` as a WAL segment filename; false if it is not one.
bool ParseWalSegmentName(const std::string& name, uint64_t* epoch,
                         uint32_t* part);

/// All segments under `dir`, sorted by (epoch, part). Missing directory
/// reads as empty.
StatusOr<std::vector<WalSegment>> ListWalSegments(const std::string& dir);

/// Smallest part number not used by any existing segment of `epoch`
/// under `dir` (0 for a fresh epoch). Shared by Open and RotateToEpoch
/// so neither ever reuses a file a previous process may have torn.
StatusOr<uint32_t> NextFreeWalPart(const std::string& dir,
                                   uint64_t epoch);

/// Tallies from one replay pass.
struct WalReplayStats {
  uint64_t messages = 0;
  /// Bytes lost to a torn final frame (expected after a crash).
  uint64_t torn_tail_bytes = 0;
  /// Bytes lost to interior corruption (never expected; replay fails
  /// with Corruption when this would be nonzero).
  uint64_t dropped_bytes = 0;
};

/// One replayed record plus where it came from, for watermark recovery:
/// `seq` is the acceptance sequence (0 for legacy v1 records), and
/// (epoch, part) locate the segment so cross-incarnation duplicates can
/// be resolved last-writer-wins.
struct WalTailRecord {
  uint64_t seq = 0;
  uint64_t epoch = 0;
  uint32_t part = 0;
  Message msg;
};

/// Reads every record in segments with epoch > `after_epoch`, in
/// (epoch, part, file) order. A torn final frame of the LAST replayed
/// segment reads as clean EOF (the legal residue of a crash
/// mid-append); a torn tail in any earlier segment, or interior
/// corruption anywhere, fails with Status::Corruption — silently
/// resuming past a mid-log hole would replay a stream with records
/// missing from the middle.
StatusOr<std::vector<WalTailRecord>> ReadWalTail(const std::string& dir,
                                                 uint64_t after_epoch,
                                                 WalReplayStats* stats);

/// Replays every record in segments with epoch > `after_epoch` through
/// `fn`, in (epoch, part) order, with the same corruption semantics as
/// ReadWalTail.
Status ReplayWal(const std::string& dir, uint64_t after_epoch,
                 const std::function<Status(Message&&)>& fn,
                 WalReplayStats* stats);

/// Deletes segments with epoch <= `through_epoch` (post-checkpoint
/// truncation).
Status RemoveWalSegmentsThrough(const std::string& dir,
                                uint64_t through_epoch);

}  // namespace recovery
}  // namespace microprov

#endif  // MICROPROV_RECOVERY_WAL_H_
