#ifndef MICROPROV_RECOVERY_WAL_H_
#define MICROPROV_RECOVERY_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "storage/log_writer.h"
#include "stream/message.h"

namespace microprov {
namespace recovery {

/// Knobs for one shard's write-ahead log.
struct WalOptions {
  /// Directory holding this shard's segments (created if missing).
  std::string dir;
  /// Start a new segment part once the current one exceeds this.
  uint64_t rotate_bytes = 8ull << 20;
  /// Push each append into the page cache (fwrite + fflush). Survives
  /// SIGKILL — the kernel still owns the bytes — but not power loss.
  bool flush_every_append = true;
  /// Full fsync per append: power-loss durable, ~100x slower. Off by
  /// default; checkpoints fsync regardless, bounding loss to the WAL
  /// tail since the last checkpoint.
  bool sync_every_append = false;
};

/// One WAL segment file. Segments are named
/// `wal-<epoch:010>-<part:06>.log`: `epoch` is the checkpoint sequence
/// the records follow (records in epoch E come after checkpoint E-1 and
/// are folded into checkpoint E), `part` counts size rotations within
/// the epoch. Replay order is (epoch, part) ascending.
struct WalSegment {
  uint64_t epoch = 0;
  uint32_t part = 0;
  std::string path;
};

/// Appends accepted messages for one shard, framed with the same
/// block/CRC format as the bundle store logs (storage/log_format.h).
/// Single-writer; the Service serializes appends under its mutex.
/// A writer never appends to a pre-existing file: Open and every
/// rotation start a fresh part, so a torn tail from a previous process
/// is always the last frame of a dead file.
class WalWriter {
 public:
  /// Opens a writer for `epoch`, starting a new part after any existing
  /// segments of that epoch. Creates the directory (fsyncing it, so the
  /// new entries survive power loss).
  static StatusOr<std::unique_ptr<WalWriter>> Open(
      const WalOptions& options, uint64_t epoch);

  /// Appends one message record; rotates parts by size.
  Status Append(const Message& msg);

  /// Switches future appends to `epoch` (post-checkpoint truncation
  /// boundary): closes the current segment and opens part 0 of the new
  /// epoch.
  Status RotateToEpoch(uint64_t epoch);

  Status Sync();
  Status Close();

  uint64_t epoch() const { return epoch_; }
  /// Bytes of payload appended through this writer (all epochs).
  uint64_t appended_bytes() const { return appended_bytes_; }

 private:
  WalWriter(const WalOptions& options, uint64_t epoch)
      : options_(options), epoch_(epoch) {}
  Status OpenSegment();

  WalOptions options_;
  uint64_t epoch_;
  uint32_t next_part_ = 0;
  std::unique_ptr<log::Writer> writer_;
  uint64_t current_segment_bytes_ = 0;
  uint64_t appended_bytes_ = 0;
  std::string scratch_;
};

/// Parses `name` as a WAL segment filename; false if it is not one.
bool ParseWalSegmentName(const std::string& name, uint64_t* epoch,
                         uint32_t* part);

/// All segments under `dir`, sorted by (epoch, part). Missing directory
/// reads as empty.
StatusOr<std::vector<WalSegment>> ListWalSegments(const std::string& dir);

/// Tallies from one replay pass.
struct WalReplayStats {
  uint64_t messages = 0;
  /// Bytes lost to a torn final frame (expected after a crash).
  uint64_t torn_tail_bytes = 0;
  /// Bytes lost to interior corruption (never expected).
  uint64_t dropped_bytes = 0;
};

/// Replays every record in segments with epoch > `after_epoch`, in
/// (epoch, part) order, invoking `fn` per decoded message. A torn final
/// frame reads as clean EOF; interior corruption is skipped and
/// reported via stats.
Status ReplayWal(const std::string& dir, uint64_t after_epoch,
                 const std::function<Status(Message&&)>& fn,
                 WalReplayStats* stats);

/// Deletes segments with epoch <= `through_epoch` (post-checkpoint
/// truncation).
Status RemoveWalSegmentsThrough(const std::string& dir,
                                uint64_t through_epoch);

}  // namespace recovery
}  // namespace microprov

#endif  // MICROPROV_RECOVERY_WAL_H_
