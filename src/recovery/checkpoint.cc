#include "recovery/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <unordered_set>

#include "common/clock.h"
#include "common/coding.h"
#include "common/env.h"
#include "common/string_util.h"

namespace microprov {
namespace recovery {

namespace {

constexpr char kCurrentName[] = "CURRENT";

bool ParseCheckpointName(const std::string& name, uint64_t* seq) {
  unsigned long long s = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "checkpoint-%10llu.snap%n", &s,
                  &consumed) != 1 ||
      static_cast<size_t>(consumed) != name.size()) {
    return false;
  }
  *seq = s;
  return true;
}

bool ParseDeltaName(const std::string& name, uint64_t* seq) {
  unsigned long long s = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "checkpoint-%10llu.delta%n", &s,
                  &consumed) != 1 ||
      static_cast<size_t>(consumed) != name.size()) {
    return false;
  }
  *seq = s;
  return true;
}

/// Write + fsync + atomic rename + directory fsync: the file is either
/// absent or complete after any crash, including power loss.
Status DurableWriteFile(const std::string& dir, const std::string& path,
                        std::string_view data) {
  const std::string tmp = path + ".tmp";
  {
    auto file_or = Env::Default()->NewWritableFile(tmp);
    if (!file_or.ok()) return file_or.status();
    auto& file = *file_or;
    MICROPROV_RETURN_IF_ERROR(file->Append(data));
    MICROPROV_RETURN_IF_ERROR(file->Sync());
    MICROPROV_RETURN_IF_ERROR(file->Close());
  }
  MICROPROV_RETURN_IF_ERROR(Env::Default()->RenameFile(tmp, path));
  return Env::Default()->SyncDir(dir);
}

}  // namespace

StatusOr<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const DurabilityOptions& options, uint32_t num_shards,
    obs::MetricsRegistry* registry) {
  if (!options.enabled()) {
    return Status::InvalidArgument("durability dir must be set");
  }
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  MICROPROV_RETURN_IF_ERROR(
      Env::Default()->CreateDirIfMissing(options.dir));
  MICROPROV_RETURN_IF_ERROR(
      Env::Default()->CreateDirIfMissing(options.dir + "/wal"));
  auto manager = std::unique_ptr<DurabilityManager>(
      new DurabilityManager(options, num_shards));
  if (registry != nullptr) {
    manager->appends_counter_ =
        registry->GetCounter("microprov_wal_appends_total", "",
                             "Messages appended to the WAL");
    manager->append_bytes_counter_ =
        registry->GetCounter("microprov_wal_bytes_total", "",
                             "Payload bytes appended to the WAL");
    manager->flushes_counter_ =
        registry->GetCounter("microprov_wal_flushes_total", "",
                             "Group-commit flush batches written");
    manager->flush_batch_hist_ =
        registry->GetHistogram("microprov_wal_flush_batch_records", "",
                               "Records per group-commit flush batch");
    manager->flush_hist_ =
        registry->GetHistogram("microprov_wal_flush_nanos", "",
                               "Group-commit flush batch latency");
    manager->checkpoints_counter_ =
        registry->GetCounter("microprov_checkpoints_total", "",
                             "Checkpoints installed (base + delta)");
    manager->delta_checkpoints_counter_ =
        registry->GetCounter("microprov_checkpoints_delta_total", "",
                             "Incremental (delta) checkpoints installed");
    manager->checkpoint_hist_ =
        registry->GetHistogram("microprov_checkpoint_nanos", "",
                               "Checkpoint capture+install duration");
    manager->checkpoint_bytes_counter_ =
        registry->GetCounter("microprov_checkpoint_bytes_total", "",
                             "Serialized base snapshot bytes written");
    manager->delta_bytes_counter_ =
        registry->GetCounter("microprov_checkpoint_delta_bytes_total", "",
                             "Serialized delta checkpoint bytes written");
    manager->replayed_counter_ = registry->GetCounter(
        "microprov_recovery_replayed_messages_total", "",
        "Messages replayed from the WAL tail at recovery");
    manager->torn_bytes_counter_ = registry->GetCounter(
        "microprov_wal_torn_tail_bytes_total", "",
        "WAL bytes discarded as torn tails at recovery");
    manager->dropped_bytes_counter_ = registry->GetCounter(
        "microprov_wal_dropped_bytes_total", "",
        "WAL bytes discarded as interior corruption at recovery");
  }
  MICROPROV_RETURN_IF_ERROR(manager->LoadLatestCheckpoint());
  return manager;
}

DurabilityManager::~DurabilityManager() {
  // Best-effort: stops the flusher and closes writers if the owner
  // never called Close() (e.g. a failed Open path).
  Status ignored = Close();
  (void)ignored;
}

std::string DurabilityManager::CheckpointPath(uint64_t seq) const {
  return options_.dir + "/" +
         StringPrintf("checkpoint-%010" PRIu64 ".snap", seq);
}

std::string DurabilityManager::DeltaPath(uint64_t seq) const {
  return options_.dir + "/" +
         StringPrintf("checkpoint-%010" PRIu64 ".delta", seq);
}

std::string DurabilityManager::ShardWalDir(uint32_t shard) const {
  return options_.dir + "/wal/" + StringPrintf("shard-%u", shard);
}

Status DurabilityManager::LoadLatestCheckpoint() {
  // CURRENT names the installed sequence, but the file CRCs are the
  // actual gate: scan bases descending, and for each candidate resolve
  // the longest delta chain that decodes, links (parent_seq), and
  // applies. A bit-rotted base degrades to the previous base; a
  // bit-rotted delta truncates the chain at its predecessor — in both
  // cases the retained WAL covers the difference.
  auto names_or = Env::Default()->ListDir(options_.dir);
  if (!names_or.ok()) return names_or.status();
  std::vector<uint64_t> bases;
  std::unordered_set<uint64_t> deltas;
  for (const std::string& name : *names_or) {
    uint64_t seq = 0;
    if (ParseCheckpointName(name, &seq)) bases.push_back(seq);
    if (ParseDeltaName(name, &seq)) deltas.insert(seq);
  }
  std::sort(bases.rbegin(), bases.rend());
  for (uint64_t base : bases) {
    // `limit` tightens when a delta decodes but fails to apply (its
    // application may have part-mutated the image, so the whole
    // resolution restarts without it). Termination: limit strictly
    // decreases.
    uint64_t limit = UINT64_MAX;
    while (true) {
      std::string encoded;
      Status read = Env::Default()->ReadFileToString(CheckpointPath(base),
                                                     &encoded);
      if (!read.ok()) break;
      auto snapshot_or = DecodeServiceSnapshot(encoded);
      if (!snapshot_or.ok()) break;
      if (snapshot_or->num_shards != num_shards_) {
        return Status::InvalidArgument(StringPrintf(
            "checkpoint has %u shards, service configured with %u",
            snapshot_or->num_shards, num_shards_));
      }
      ServiceSnapshot image = std::move(*snapshot_or);
      uint64_t resolved = base;
      bool retry = false;
      for (uint64_t d = base + 1; d < limit && deltas.count(d) != 0;
           ++d) {
        std::string delta_encoded;
        if (!Env::Default()
                 ->ReadFileToString(DeltaPath(d), &delta_encoded)
                 .ok()) {
          break;
        }
        auto delta_or = DecodeServiceDelta(delta_encoded);
        if (!delta_or.ok()) break;
        if (delta_or->parent_seq != resolved) break;
        if (!ApplyServiceDelta(&image, std::move(*delta_or)).ok()) {
          limit = d;
          retry = true;
          break;
        }
        resolved = d;
      }
      if (retry) continue;
      snapshot_ = std::move(image);
      has_snapshot_ = true;
      seq_ = resolved;
      base_seq_ = base;
      return Status::OK();
    }
  }
  return Status::OK();  // fresh directory
}

ServiceSnapshot DurabilityManager::TakeSnapshot() {
  has_snapshot_ = false;
  return std::move(snapshot_);
}

StatusOr<std::vector<WalTailRecord>> DurabilityManager::ReadShardTail(
    uint32_t shard) {
  WalReplayStats stats;
  auto records_or = ReadWalTail(ShardWalDir(shard), seq_, &stats);
  replay_stats_.torn_tail_bytes += stats.torn_tail_bytes;
  replay_stats_.dropped_bytes += stats.dropped_bytes;
  if (torn_bytes_counter_ != nullptr && stats.torn_tail_bytes > 0) {
    torn_bytes_counter_->Increment(
        static_cast<uint64_t>(stats.torn_tail_bytes));
  }
  if (dropped_bytes_counter_ != nullptr && stats.dropped_bytes > 0) {
    dropped_bytes_counter_->Increment(
        static_cast<uint64_t>(stats.dropped_bytes));
  }
  return records_or;
}

void DurabilityManager::NoteReplayed(uint64_t n) {
  replay_stats_.messages += n;
  if (replayed_counter_ != nullptr && n > 0) {
    replayed_counter_->Increment(n);
  }
}

Status DurabilityManager::StartWal(uint64_t durable_floor) {
  if (!options_.wal_enabled || !writers_.empty()) return Status::OK();
  WalOptions wal;
  wal.rotate_bytes = options_.wal_rotate_bytes;
  wal.flush_every_append = options_.wal_flush_every_append;
  wal.sync_every_append = options_.wal_sync_every_append;
  wal.group_commit_interval_us = options_.wal_group_commit_interval_us;
  wal.group_commit_bytes = options_.wal_group_commit_bytes;
  writers_.reserve(num_shards_);
  for (uint32_t i = 0; i < num_shards_; ++i) {
    wal.dir = ShardWalDir(i);
    auto writer_or = WalWriter::Open(wal, seq_ + 1);
    if (!writer_or.ok()) return writer_or.status();
    writers_.push_back(std::move(*writer_or));
  }
  pending_.assign(num_shards_, {});
  pending_bytes_ = 0;
  pending_records_ = 0;
  last_enqueued_seq_ = durable_floor;
  durable_seq_ = durable_floor;
  flusher_error_ = Status::OK();
  flusher_kick_ = false;
  flusher_stop_ = false;
  shard_pending_bytes_ =
      std::make_unique<std::atomic<uint64_t>[]>(num_shards_);
  for (uint32_t i = 0; i < num_shards_; ++i) {
    shard_pending_bytes_[i].store(0, std::memory_order_relaxed);
  }
  flusher_heartbeat_nanos_.store(MonotonicNanos(),
                                 std::memory_order_release);
  flusher_ = std::thread(&DurabilityManager::FlusherLoop, this);
  return Status::OK();
}

uint64_t DurabilityManager::PendingShardBytes(uint32_t shard) const {
  if (shard_pending_bytes_ == nullptr || shard >= num_shards_) return 0;
  return shard_pending_bytes_[shard].load(std::memory_order_relaxed);
}

int64_t DurabilityManager::FlusherHeartbeatAgeNanos() const {
  const int64_t beat =
      flusher_heartbeat_nanos_.load(std::memory_order_acquire);
  if (beat == 0) return -1;
  return MonotonicNanos() - beat;
}

Status DurabilityManager::EnqueueAppend(uint32_t shard, uint64_t seq,
                                        const Message& msg) {
  if (writers_.empty()) return Status::OK();
  std::unique_lock<std::mutex> lk(buf_mu_);
  while (flusher_error_.ok() &&
         pending_bytes_ >= options_.wal_max_pending_bytes) {
    flusher_kick_ = true;
    flusher_cv_.notify_one();
    space_cv_.wait(lk);
  }
  if (!flusher_error_.ok()) return flusher_error_;
  // Encode straight into the flat pending buffer behind a fixed-width
  // length slot patched once the payload size is known: no scratch
  // string, no second copy, zero allocations in steady state.
  std::string& buf = pending_[shard];
  const size_t len_at = buf.size();
  PutFixed32(&buf, 0);
  EncodeWalRecord(seq, msg, &buf);
  const uint32_t payload_len =
      static_cast<uint32_t>(buf.size() - len_at - sizeof(uint32_t));
  EncodeFixed32(&buf[len_at], payload_len);
  pending_bytes_ += payload_len;
  shard_pending_bytes_[shard].fetch_add(buf.size() - len_at,
                                        std::memory_order_relaxed);
  ++pending_records_;
  last_enqueued_seq_ = seq;
  // The flusher polls at the group-commit cadence, so the common case
  // needs no wakeup (a condvar notify is a syscall — on the hot path it
  // shows up as a p99 spike on the first record of every batch). Notify
  // only when the byte threshold demands an early flush, or when no
  // interval is configured and the flusher sleeps indefinitely.
  if (pending_bytes_ >= options_.wal_group_commit_bytes ||
      options_.wal_group_commit_interval_us == 0) {
    flusher_cv_.notify_one();
  }
  return Status::OK();
}

Status DurabilityManager::WaitDurable(uint64_t seq) {
  if (writers_.empty()) return Status::OK();
  std::unique_lock<std::mutex> lk(buf_mu_);
  if (durable_seq_ >= seq) return Status::OK();
  flusher_kick_ = true;
  flusher_cv_.notify_one();
  durable_cv_.wait(lk, [&] {
    return durable_seq_ >= seq || !flusher_error_.ok();
  });
  if (durable_seq_ >= seq) return Status::OK();
  return flusher_error_;
}

uint64_t DurabilityManager::durable_seq() {
  std::lock_guard<std::mutex> lk(buf_mu_);
  return durable_seq_;
}

void DurabilityManager::FlusherLoop() {
  const auto interval =
      std::chrono::microseconds(options_.wal_group_commit_interval_us);
  // Double buffer: the drained set keeps its capacity between batches,
  // so the swap hands the producer warm buffers and nothing reallocates
  // in steady state.
  std::vector<std::string> draining(num_shards_);
  std::unique_lock<std::mutex> lk(buf_mu_);
  for (;;) {
    // Sleep until there is work. With a commit interval configured the
    // producer never notifies: the flusher polls at that cadence and
    // sweeps whatever accumulated. Urgent wakeups (shutdown, a
    // WaitDurable kick, the byte threshold, backpressure) still notify.
    while (pending_records_ == 0 && !flusher_stop_) {
      // A kick with nothing pending is already satisfied: everything
      // enqueued has been written and published.
      flusher_kick_ = false;
      flusher_heartbeat_nanos_.store(MonotonicNanos(),
                                     std::memory_order_release);
      if (interval.count() > 0) {
        flusher_cv_.wait_for(lk, interval);
      } else {
        flusher_cv_.wait(lk, [&] {
          return flusher_stop_ || flusher_kick_ || pending_records_ > 0;
        });
      }
    }
    if (pending_records_ == 0) return;  // stopping, fully drained
    // Accumulation window: absent urgency (shutdown, an explicit
    // WaitDurable kick, or the byte threshold), linger so concurrent
    // producers amortize one flush.
    if (!flusher_stop_ && !flusher_kick_ && interval.count() > 0 &&
        pending_bytes_ < options_.wal_group_commit_bytes) {
      flusher_cv_.wait_for(lk, interval, [&] {
        return flusher_stop_ || flusher_kick_ ||
               pending_bytes_ >= options_.wal_group_commit_bytes;
      });
    }
    flusher_kick_ = false;
    // Capture the watermark target BEFORE stealing: the producer is
    // serialized, so every sequence <= target is either in this batch
    // or already written.
    const uint64_t target = last_enqueued_seq_;
    const uint64_t batch_records = pending_records_;
    std::swap(pending_, draining);
    pending_bytes_ = 0;
    pending_records_ = 0;
    space_cv_.notify_all();
    lk.unlock();

    const int64_t t0 = MonotonicNanos();
    Status s = WriteBatch(draining);
    if (s.ok()) {
      // Only bytes that actually hit the WAL stop counting as pending:
      // a flusher stuck (or failed) mid-batch keeps showing its load.
      for (uint32_t i = 0; i < num_shards_; ++i) {
        shard_pending_bytes_[i].fetch_sub(draining[i].size(),
                                          std::memory_order_relaxed);
      }
    }
    flusher_heartbeat_nanos_.store(MonotonicNanos(),
                                   std::memory_order_release);
    for (std::string& buf : draining) buf.clear();
    if (flushes_counter_ != nullptr) flushes_counter_->Increment();
    if (flush_batch_hist_ != nullptr) {
      flush_batch_hist_->Observe(batch_records);
    }
    if (flush_hist_ != nullptr) {
      flush_hist_->Observe(
          static_cast<uint64_t>(MonotonicNanos() - t0));
    }

    lk.lock();
    if (!s.ok()) {
      // The WAL is broken: latch, wake everyone, and stop — accepting
      // more records would silently widen the durability hole.
      flusher_error_ = s;
      durable_cv_.notify_all();
      space_cv_.notify_all();
      return;
    }
    if (target > durable_seq_) durable_seq_ = target;
    durable_cv_.notify_all();
  }
}

Status DurabilityManager::WriteBatch(const std::vector<std::string>& batch) {
  if (options_.wal_flush_phase_hook_for_test) {
    options_.wal_flush_phase_hook_for_test(WalFlushPhase::kDequeued);
  }
  std::lock_guard<std::mutex> wl(writers_mu_);
  size_t touched = 0;
  for (const auto& buf : batch) touched += buf.empty() ? 0 : 1;
  size_t written = 0;
  for (uint32_t shard = 0; shard < num_shards_; ++shard) {
    std::string_view buf = batch[shard];
    if (buf.empty()) continue;
    const uint64_t before = writers_[shard]->appended_bytes();
    uint64_t records = 0;
    while (!buf.empty()) {
      uint32_t len = 0;
      if (!GetFixed32(&buf, &len) || len > buf.size()) {
        return Status::Internal("malformed group-commit batch buffer");
      }
      MICROPROV_RETURN_IF_ERROR(
          writers_[shard]->AppendEncoded(buf.substr(0, len)));
      buf.remove_prefix(len);
      ++records;
    }
    if (options_.wal_flush_every_append) {
      MICROPROV_RETURN_IF_ERROR(writers_[shard]->Flush());
    }
    if (options_.wal_sync_every_append) {
      MICROPROV_RETURN_IF_ERROR(writers_[shard]->Sync());
    }
    if (appends_counter_ != nullptr) {
      appends_counter_->Increment(records);
    }
    if (append_bytes_counter_ != nullptr) {
      append_bytes_counter_->Increment(static_cast<uint64_t>(
          writers_[shard]->appended_bytes() - before));
    }
    ++written;
    if (written == 1 && touched > 1 &&
        options_.wal_flush_phase_hook_for_test) {
      options_.wal_flush_phase_hook_for_test(WalFlushPhase::kMidBatch);
    }
  }
  if (options_.wal_flush_phase_hook_for_test) {
    options_.wal_flush_phase_hook_for_test(WalFlushPhase::kPrePublish);
  }
  return Status::OK();
}

bool DurabilityManager::ShouldInstallDelta() const {
  return options_.incremental_checkpoints && base_seq_ > 0 &&
         (seq_ - base_seq_ + 1) < options_.full_checkpoint_every;
}

Status DurabilityManager::InstallCheckpoint(
    const ServiceSnapshot& snapshot) {
  const int64_t t0 = MonotonicNanos();
  const uint64_t new_seq = seq_ + 1;
  std::string encoded;
  EncodeServiceSnapshot(snapshot, &encoded);
  MICROPROV_RETURN_IF_ERROR(DurableWriteFile(
      options_.dir, CheckpointPath(new_seq), encoded));
  // Future appends belong to the next epoch; records already written
  // under epoch new_seq are covered by the snapshot just persisted.
  {
    std::lock_guard<std::mutex> wl(writers_mu_);
    for (auto& writer : writers_) {
      MICROPROV_RETURN_IF_ERROR(writer->RotateToEpoch(new_seq + 1));
    }
  }
  MICROPROV_RETURN_IF_ERROR(
      DurableWriteFile(options_.dir, options_.dir + "/" + kCurrentName,
                       StringPrintf("%" PRIu64 "\n", new_seq)));
  seq_ = new_seq;
  base_seq_ = new_seq;
  if (checkpoints_counter_ != nullptr) checkpoints_counter_->Increment();
  if (checkpoint_bytes_counter_ != nullptr) {
    checkpoint_bytes_counter_->Increment(
        static_cast<uint64_t>(encoded.size()));
  }
  // GC is advisory: a crash here leaves superseded files that the next
  // install sweeps again.
  Status gc = GarbageCollect();
  if (checkpoint_hist_ != nullptr) {
    checkpoint_hist_->Observe(MonotonicNanos() - t0);
  }
  return gc;
}

Status DurabilityManager::InstallDelta(const ServiceDelta& delta) {
  if (delta.parent_seq != seq_) {
    return Status::InvalidArgument(StringPrintf(
        "delta parent %" PRIu64 " does not match checkpoint %" PRIu64,
        delta.parent_seq, seq_));
  }
  const int64_t t0 = MonotonicNanos();
  const uint64_t new_seq = seq_ + 1;
  std::string encoded;
  EncodeServiceDelta(delta, &encoded);
  MICROPROV_RETURN_IF_ERROR(
      DurableWriteFile(options_.dir, DeltaPath(new_seq), encoded));
  {
    std::lock_guard<std::mutex> wl(writers_mu_);
    for (auto& writer : writers_) {
      MICROPROV_RETURN_IF_ERROR(writer->RotateToEpoch(new_seq + 1));
    }
  }
  MICROPROV_RETURN_IF_ERROR(
      DurableWriteFile(options_.dir, options_.dir + "/" + kCurrentName,
                       StringPrintf("%" PRIu64 "\n", new_seq)));
  seq_ = new_seq;
  if (checkpoints_counter_ != nullptr) checkpoints_counter_->Increment();
  if (delta_checkpoints_counter_ != nullptr) {
    delta_checkpoints_counter_->Increment();
  }
  if (delta_bytes_counter_ != nullptr) {
    delta_bytes_counter_->Increment(static_cast<uint64_t>(encoded.size()));
  }
  // NO garbage collection: superseded WAL epochs and earlier deltas
  // stay on disk until the next base install, so losing this delta file
  // to bit-rot never loses data — recovery falls back to the chain
  // prefix and replays the retained WAL.
  if (checkpoint_hist_ != nullptr) {
    checkpoint_hist_->Observe(MonotonicNanos() - t0);
  }
  return Status::OK();
}

Status DurabilityManager::GarbageCollect() {
  auto names_or = Env::Default()->ListDir(options_.dir);
  if (!names_or.ok()) return names_or.status();
  for (const std::string& name : *names_or) {
    uint64_t seq = 0;
    const bool stale_base = ParseCheckpointName(name, &seq) && seq < seq_;
    const bool stale_delta = ParseDeltaName(name, &seq) && seq <= seq_;
    if (stale_base || stale_delta) {
      MICROPROV_RETURN_IF_ERROR(
          Env::Default()->RemoveFile(options_.dir + "/" + name));
    }
  }
  for (uint32_t i = 0; i < num_shards_; ++i) {
    MICROPROV_RETURN_IF_ERROR(
        RemoveWalSegmentsThrough(ShardWalDir(i), seq_));
  }
  return Status::OK();
}

Status DurabilityManager::Close() {
  {
    std::lock_guard<std::mutex> lk(buf_mu_);
    flusher_stop_ = true;
    flusher_cv_.notify_one();
  }
  if (flusher_.joinable()) flusher_.join();
  Status result = flusher_error_;
  std::lock_guard<std::mutex> wl(writers_mu_);
  for (auto& writer : writers_) {
    Status close = writer->Close();
    if (result.ok()) result = close;
  }
  writers_.clear();
  return result;
}

}  // namespace recovery
}  // namespace microprov
