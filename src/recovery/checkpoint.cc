#include "recovery/checkpoint.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/clock.h"
#include "common/env.h"
#include "common/string_util.h"

namespace microprov {
namespace recovery {

namespace {

constexpr char kCurrentName[] = "CURRENT";

bool ParseCheckpointName(const std::string& name, uint64_t* seq) {
  unsigned long long s = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "checkpoint-%10llu.snap%n", &s,
                  &consumed) != 1 ||
      static_cast<size_t>(consumed) != name.size()) {
    return false;
  }
  *seq = s;
  return true;
}

/// Write + fsync + atomic rename + directory fsync: the file is either
/// absent or complete after any crash, including power loss.
Status DurableWriteFile(const std::string& dir, const std::string& path,
                        std::string_view data) {
  const std::string tmp = path + ".tmp";
  {
    auto file_or = Env::Default()->NewWritableFile(tmp);
    if (!file_or.ok()) return file_or.status();
    auto& file = *file_or;
    MICROPROV_RETURN_IF_ERROR(file->Append(data));
    MICROPROV_RETURN_IF_ERROR(file->Sync());
    MICROPROV_RETURN_IF_ERROR(file->Close());
  }
  MICROPROV_RETURN_IF_ERROR(Env::Default()->RenameFile(tmp, path));
  return Env::Default()->SyncDir(dir);
}

}  // namespace

StatusOr<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const DurabilityOptions& options, uint32_t num_shards,
    obs::MetricsRegistry* registry) {
  if (!options.enabled()) {
    return Status::InvalidArgument("durability dir must be set");
  }
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  MICROPROV_RETURN_IF_ERROR(
      Env::Default()->CreateDirIfMissing(options.dir));
  MICROPROV_RETURN_IF_ERROR(
      Env::Default()->CreateDirIfMissing(options.dir + "/wal"));
  auto manager = std::unique_ptr<DurabilityManager>(
      new DurabilityManager(options, num_shards));
  if (registry != nullptr) {
    manager->appends_counter_ =
        registry->GetCounter("microprov_wal_appends_total", "",
                             "Messages appended to the WAL");
    manager->append_bytes_counter_ =
        registry->GetCounter("microprov_wal_bytes_total", "",
                             "Payload bytes appended to the WAL");
    manager->append_hist_ =
        registry->GetHistogram("microprov_wal_append_nanos", "",
                               "Per-message WAL append latency");
    manager->checkpoints_counter_ =
        registry->GetCounter("microprov_checkpoints_total", "",
                             "Checkpoints installed");
    manager->checkpoint_hist_ =
        registry->GetHistogram("microprov_checkpoint_nanos", "",
                               "Checkpoint capture+install duration");
    manager->checkpoint_bytes_counter_ =
        registry->GetCounter("microprov_checkpoint_bytes_total", "",
                             "Serialized snapshot bytes written");
    manager->replayed_counter_ = registry->GetCounter(
        "microprov_recovery_replayed_messages_total", "",
        "Messages replayed from the WAL tail at recovery");
    manager->torn_bytes_counter_ = registry->GetCounter(
        "microprov_wal_torn_tail_bytes_total", "",
        "WAL bytes discarded as torn tails at recovery");
    manager->dropped_bytes_counter_ = registry->GetCounter(
        "microprov_wal_dropped_bytes_total", "",
        "WAL bytes discarded as interior corruption at recovery");
  }
  MICROPROV_RETURN_IF_ERROR(manager->LoadLatestCheckpoint());
  return manager;
}

std::string DurabilityManager::CheckpointPath(uint64_t seq) const {
  return options_.dir + "/" +
         StringPrintf("checkpoint-%010" PRIu64 ".snap", seq);
}

std::string DurabilityManager::ShardWalDir(uint32_t shard) const {
  return options_.dir + "/wal/" + StringPrintf("shard-%u", shard);
}

Status DurabilityManager::LoadLatestCheckpoint() {
  // CURRENT names the installed sequence, but the snapshot CRC is the
  // actual gate: scan descending and load the newest valid image, so a
  // bit-rotted file degrades to the previous checkpoint instead of
  // failing recovery outright.
  auto names_or = Env::Default()->ListDir(options_.dir);
  if (!names_or.ok()) return names_or.status();
  std::vector<uint64_t> seqs;
  for (const std::string& name : *names_or) {
    uint64_t seq = 0;
    if (ParseCheckpointName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.rbegin(), seqs.rend());
  for (uint64_t seq : seqs) {
    std::string encoded;
    Status read =
        Env::Default()->ReadFileToString(CheckpointPath(seq), &encoded);
    if (!read.ok()) continue;
    auto snapshot_or = DecodeServiceSnapshot(encoded);
    if (!snapshot_or.ok()) continue;
    if (snapshot_or->num_shards != num_shards_) {
      return Status::InvalidArgument(StringPrintf(
          "checkpoint has %u shards, service configured with %u",
          snapshot_or->num_shards, num_shards_));
    }
    snapshot_ = std::move(*snapshot_or);
    has_snapshot_ = true;
    seq_ = seq;
    return Status::OK();
  }
  return Status::OK();  // fresh directory
}

ServiceSnapshot DurabilityManager::TakeSnapshot() {
  has_snapshot_ = false;
  return std::move(snapshot_);
}

Status DurabilityManager::ReplayShard(
    uint32_t shard, const std::function<Status(Message&&)>& fn) {
  WalReplayStats stats;
  MICROPROV_RETURN_IF_ERROR(
      ReplayWal(ShardWalDir(shard), seq_, fn, &stats));
  replay_stats_.messages += stats.messages;
  replay_stats_.torn_tail_bytes += stats.torn_tail_bytes;
  replay_stats_.dropped_bytes += stats.dropped_bytes;
  if (replayed_counter_ != nullptr) {
    replayed_counter_->Increment(static_cast<uint64_t>(stats.messages));
  }
  if (torn_bytes_counter_ != nullptr && stats.torn_tail_bytes > 0) {
    torn_bytes_counter_->Increment(
        static_cast<uint64_t>(stats.torn_tail_bytes));
  }
  if (dropped_bytes_counter_ != nullptr && stats.dropped_bytes > 0) {
    dropped_bytes_counter_->Increment(
        static_cast<uint64_t>(stats.dropped_bytes));
  }
  return Status::OK();
}

Status DurabilityManager::StartWal() {
  if (!options_.wal_enabled || !writers_.empty()) return Status::OK();
  WalOptions wal;
  wal.rotate_bytes = options_.wal_rotate_bytes;
  wal.flush_every_append = options_.wal_flush_every_append;
  wal.sync_every_append = options_.wal_sync_every_append;
  writers_.reserve(num_shards_);
  for (uint32_t i = 0; i < num_shards_; ++i) {
    wal.dir = ShardWalDir(i);
    auto writer_or = WalWriter::Open(wal, seq_ + 1);
    if (!writer_or.ok()) return writer_or.status();
    writers_.push_back(std::move(*writer_or));
  }
  return Status::OK();
}

Status DurabilityManager::Append(uint32_t shard, const Message& msg) {
  if (writers_.empty()) return Status::OK();
  const int64_t t0 = MonotonicNanos();
  const uint64_t before = writers_[shard]->appended_bytes();
  MICROPROV_RETURN_IF_ERROR(writers_[shard]->Append(msg));
  if (appends_counter_ != nullptr) appends_counter_->Increment();
  if (append_bytes_counter_ != nullptr) {
    append_bytes_counter_->Increment(
        static_cast<uint64_t>(writers_[shard]->appended_bytes() - before));
  }
  if (append_hist_ != nullptr) {
    append_hist_->Observe(MonotonicNanos() - t0);
  }
  return Status::OK();
}

Status DurabilityManager::SyncWal() {
  for (auto& writer : writers_) {
    MICROPROV_RETURN_IF_ERROR(writer->Sync());
  }
  return Status::OK();
}

Status DurabilityManager::InstallCheckpoint(
    const ServiceSnapshot& snapshot) {
  const int64_t t0 = MonotonicNanos();
  const uint64_t new_seq = seq_ + 1;
  std::string encoded;
  EncodeServiceSnapshot(snapshot, &encoded);
  MICROPROV_RETURN_IF_ERROR(DurableWriteFile(
      options_.dir, CheckpointPath(new_seq), encoded));
  // Future appends belong to the next epoch; records already written
  // under epoch new_seq are covered by the snapshot just persisted.
  for (auto& writer : writers_) {
    MICROPROV_RETURN_IF_ERROR(writer->RotateToEpoch(new_seq + 1));
  }
  MICROPROV_RETURN_IF_ERROR(
      DurableWriteFile(options_.dir, options_.dir + "/" + kCurrentName,
                       StringPrintf("%" PRIu64 "\n", new_seq)));
  seq_ = new_seq;
  if (checkpoints_counter_ != nullptr) checkpoints_counter_->Increment();
  if (checkpoint_bytes_counter_ != nullptr) {
    checkpoint_bytes_counter_->Increment(
        static_cast<uint64_t>(encoded.size()));
  }
  // GC is advisory: a crash here leaves superseded files that the next
  // install sweeps again.
  Status gc = GarbageCollect();
  if (checkpoint_hist_ != nullptr) {
    checkpoint_hist_->Observe(MonotonicNanos() - t0);
  }
  return gc;
}

Status DurabilityManager::GarbageCollect() {
  auto names_or = Env::Default()->ListDir(options_.dir);
  if (!names_or.ok()) return names_or.status();
  for (const std::string& name : *names_or) {
    uint64_t seq = 0;
    if (ParseCheckpointName(name, &seq) && seq < seq_) {
      MICROPROV_RETURN_IF_ERROR(
          Env::Default()->RemoveFile(options_.dir + "/" + name));
    }
  }
  for (uint32_t i = 0; i < num_shards_; ++i) {
    MICROPROV_RETURN_IF_ERROR(
        RemoveWalSegmentsThrough(ShardWalDir(i), seq_));
  }
  return Status::OK();
}

Status DurabilityManager::Close() {
  for (auto& writer : writers_) {
    MICROPROV_RETURN_IF_ERROR(writer->Close());
  }
  writers_.clear();
  return Status::OK();
}

}  // namespace recovery
}  // namespace microprov
