#include "gen/generator.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/hash.h"
#include "common/string_util.h"

namespace microprov {

namespace {

// Pre-sort draft record; RT targets are event-local until ids exist.
struct Draft {
  Message msg;
  std::string body;  // text without RT prefix, for quoting
  int64_t event_id = -1;
  int64_t local_idx = -1;
  int64_t rt_local_target = -1;
};

}  // namespace

namespace {

// A single event bigger than ~2% of the whole stream would be an
// artifact of running at reduced scale (the paper's defaults assume a
// 700k-message stream); clamp so distribution shapes survive downscaling.
GeneratorOptions ClampEventSize(GeneratorOptions options) {
  const uint64_t cap =
      std::max<uint64_t>(20, options.total_messages / 50);
  if (options.event_options.max_event_size > cap) {
    options.event_options.max_event_size = cap;
  }
  return options;
}

}  // namespace

StreamGenerator::StreamGenerator(const GeneratorOptions& options)
    : options_(ClampEventSize(options)),
      text_model_([&] {
        TextModel::Options topts = options_.text_options;
        topts.seed = options_.seed ^ 0x7477;
        return topts;
      }()),
      event_model_(options_.event_options, &text_model_) {}

void StreamGenerator::Inject(InjectedEvent event) {
  injected_.push_back(std::move(event));
}

std::vector<Message> StreamGenerator::Generate(GroundTruth* truth) {
  Random rng(options_.seed);
  ZipfSampler user_sampler(options_.num_users, options_.user_zipf);

  const Timestamp start = options_.start_date;
  const Timestamp horizon =
      start + options_.duration_days * kSecondsPerDay;

  const uint64_t noise_budget = static_cast<uint64_t>(
      static_cast<double>(options_.total_messages) *
      options_.noise_fraction);
  uint64_t injected_total = 0;
  for (const auto& ev : injected_) injected_total += ev.size;
  const uint64_t event_budget =
      options_.total_messages > noise_budget + injected_total
          ? options_.total_messages - noise_budget - injected_total
          : 0;

  std::vector<Draft> drafts;
  drafts.reserve(options_.total_messages);

  auto sample_user = [&]() {
    return StringPrintf("user%zu", user_sampler.Sample(&rng));
  };

  auto emit_event_messages = [&](const EventSpec& spec, int64_t event_id) {
    std::vector<Timestamp> times =
        event_model_.SampleEmissionTimes(&rng, spec);
    // Track each emitted message's author/body for RT quoting.
    std::vector<std::string> authors(times.size());
    std::vector<std::string> bodies(times.size());
    for (size_t i = 0; i < times.size(); ++i) {
      Draft d;
      d.event_id = event_id;
      d.local_idx = static_cast<int64_t>(i);
      d.msg.date = times[i];
      d.msg.user = sample_user();
      authors[i] = d.msg.user;

      const bool is_rt =
          i > 0 && rng.Bernoulli(spec.rt_probability);
      if (is_rt) {
        size_t target = event_model_.SampleRtTarget(&rng, i);
        d.rt_local_target = static_cast<int64_t>(target);
        std::string comment;
        if (rng.Bernoulli(0.4)) {
          comment = text_model_.ComposeBody(&rng, spec.topic_words,
                                            1 + rng.Uniform(3), 0.5);
          comment += " ";
        }
        d.body = bodies[target];
        d.msg.text = comment + "RT @" + authors[target] + ": " + d.body;
      } else {
        std::string body = text_model_.ComposeBody(
            &rng, spec.topic_words, 4 + rng.Uniform(9), 0.55);
        if (rng.Bernoulli(spec.hashtag_probability) &&
            !spec.hashtags.empty()) {
          size_t ntags = 1 + rng.Uniform(spec.hashtags.size());
          for (size_t t = 0; t < ntags; ++t) {
            body += " #" + spec.hashtags[t];
          }
        }
        if (rng.Bernoulli(spec.url_probability) && !spec.urls.empty()) {
          body += " http://" + spec.urls[rng.Uniform(spec.urls.size())];
        }
        d.body = body;
        d.msg.text = std::move(body);
      }
      bodies[i] = d.body;
      drafts.push_back(std::move(d));
    }
  };

  // ---- regular events ----
  int64_t next_event_id = 0;
  uint64_t emitted = 0;
  while (emitted < event_budget) {
    // Events start anywhere in the first 95% of the window.
    Timestamp ev_start =
        start + static_cast<Timestamp>(rng.NextDouble() * 0.95 *
                                       static_cast<double>(horizon - start));
    EventSpec spec =
        event_model_.SampleEvent(&rng, next_event_id, ev_start, horizon);
    if (spec.size > event_budget - emitted) {
      spec.size = event_budget - emitted;
      if (spec.size == 0) break;
    }
    emit_event_messages(spec, next_event_id);
    emitted += spec.size;
    ++next_event_id;
  }

  // ---- injected showcase events ----
  int64_t injected_id = -2;
  for (const auto& inj : injected_) {
    EventSpec spec;
    spec.event_id = injected_id;
    spec.start = inj.start != 0 ? inj.start : start + kSecondsPerDay;
    spec.size = inj.size != 0 ? inj.size : 20;
    spec.duration_secs =
        inj.duration_secs != 0 ? inj.duration_secs : 6 * kSecondsPerHour;
    spec.hashtags = inj.hashtags;
    spec.urls = inj.urls;
    spec.topic_words = !inj.topic_words.empty()
                           ? inj.topic_words
                           : text_model_.SampleTopicWords(&rng, 16);
    spec.rt_probability = inj.rt_probability;
    emit_event_messages(spec, injected_id);
    --injected_id;
  }

  // ---- noise ----
  for (uint64_t i = 0; i < noise_budget; ++i) {
    Draft d;
    d.event_id = -1;
    d.msg.date = start + static_cast<Timestamp>(
                             rng.NextDouble() *
                             static_cast<double>(horizon - start));
    d.msg.user = sample_user();
    std::string body;
    if (rng.Bernoulli(0.5)) {
      body = text_model_.ComposeInterjection(&rng);
    } else {
      body = text_model_.ComposeBody(&rng, {}, 2 + rng.Uniform(5), 0.0);
    }
    // A slice of noise piggybacks on popular hashtags ("#redsox sigh!").
    if (rng.Bernoulli(0.2)) {
      body += " #" + text_model_.WordAt(
                         rng.Uniform(text_model_.vocabulary_size() / 10));
    }
    d.body = body;
    d.msg.text = std::move(body);
    drafts.push_back(std::move(d));
  }

  // ---- order by date, assign ids, resolve RT targets ----
  std::stable_sort(drafts.begin(), drafts.end(),
                   [](const Draft& a, const Draft& b) {
                     return a.msg.date < b.msg.date;
                   });

  // (event_id, local_idx) -> global id.
  std::unordered_map<std::pair<int64_t, int64_t>, MessageId, PairHash>
      local_to_global;
  auto key_of = [](int64_t event_id, int64_t local_idx) {
    return std::make_pair(event_id, local_idx);
  };

  std::vector<Message> out;
  out.reserve(drafts.size());
  if (truth != nullptr) {
    truth->event_of.clear();
    truth->event_of.reserve(drafts.size());
    truth->num_events = next_event_id;
  }
  for (size_t i = 0; i < drafts.size(); ++i) {
    Draft& d = drafts[i];
    d.msg.id = static_cast<MessageId>(i);
    if (d.local_idx >= 0) {
      local_to_global[key_of(d.event_id, d.local_idx)] = d.msg.id;
    }
    if (d.rt_local_target >= 0) {
      auto it = local_to_global.find(key_of(d.event_id, d.rt_local_target));
      assert(it != local_to_global.end());
      d.msg.retweet_of_id = it->second;
      d.msg.is_retweet = true;
    }
    if (options_.extract_indicants_from_text) {
      MessageId rt_id = d.msg.retweet_of_id;
      bool was_rt = d.msg.is_retweet;
      ExtractIndicants(&d.msg);
      d.msg.retweet_of_id = rt_id;
      d.msg.is_retweet = was_rt || d.msg.is_retweet;
    }
    if (truth != nullptr) truth->event_of.push_back(d.event_id);
    out.push_back(std::move(d.msg));
  }
  return out;
}

}  // namespace microprov
