#include "gen/event_model.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "gen/zipf.h"

namespace microprov {

EventModel::EventModel(const EventModelOptions& options,
                       const TextModel* text_model)
    : options_(options), text_model_(text_model) {
  // Deterministic shared-hashtag pool drawn from the head of the text
  // model's vocabulary.
  Random rng(0xbeefcafe);
  for (size_t i = 0; i < options_.num_shared_hashtags; ++i) {
    shared_hashtags_.push_back(
        text_model_->WordAt(rng.Uniform(text_model_->vocabulary_size() / 10)));
  }
}

EventSpec EventModel::SampleEvent(Random* rng, int64_t event_id,
                                  Timestamp start,
                                  Timestamp horizon) const {
  EventSpec spec;
  spec.event_id = event_id;
  spec.start = start;
  spec.size = SamplePowerLaw(rng, options_.min_event_size,
                             options_.max_event_size, options_.size_alpha);

  double base = options_.duration_scale_secs *
                std::sqrt(static_cast<double>(spec.size));
  double jitter = std::exp(rng->NextGaussian() * 0.6);
  int64_t duration = static_cast<int64_t>(base * jitter);
  duration = std::max<int64_t>(duration, 10 * kSecondsPerMinute);
  if (start + duration > horizon) duration = horizon - start;
  spec.duration_secs = std::max<int64_t>(duration, kSecondsPerMinute);

  // Signature hashtag: unique per event, or a shared popular one.
  if (rng->Bernoulli(options_.shared_hashtag_fraction) &&
      !shared_hashtags_.empty()) {
    spec.hashtags.push_back(
        shared_hashtags_[rng->Uniform(shared_hashtags_.size())]);
  } else {
    spec.hashtags.push_back(StringPrintf(
        "%s%lld",
        text_model_->WordAt(rng->Uniform(text_model_->vocabulary_size()))
            .c_str(),
        (long long)(event_id % 1000)));
  }
  // Optional secondary tags (possibly shared).
  size_t extra_tags = rng->Uniform(3);  // 0..2
  for (size_t i = 0; i < extra_tags; ++i) {
    if (rng->Bernoulli(0.5) && !shared_hashtags_.empty()) {
      spec.hashtags.push_back(
          shared_hashtags_[rng->Uniform(shared_hashtags_.size())]);
    } else {
      spec.hashtags.push_back(
          text_model_->WordAt(rng->Uniform(text_model_->vocabulary_size())));
    }
  }

  size_t num_urls = rng->Uniform(4);  // 0..3
  static constexpr const char* kShorteners[] = {"bit.ly", "ow.ly", "is.gd",
                                                "tinyurl.com"};
  for (size_t i = 0; i < num_urls; ++i) {
    spec.urls.push_back(StringPrintf(
        "%s/%llx", kShorteners[rng->Uniform(std::size(kShorteners))],
        (unsigned long long)rng->Next() & 0xFFFFFFF));
  }

  spec.topic_words =
      text_model_->SampleTopicWords(rng, options_.topic_words_per_event);

  // Big events re-share more aggressively.
  spec.rt_probability = spec.size > 100 ? 0.5 : 0.3;
  return spec;
}

std::vector<Timestamp> EventModel::SampleEmissionTimes(
    Random* rng, const EventSpec& spec) const {
  std::vector<Timestamp> times;
  times.reserve(spec.size);
  times.push_back(spec.start);
  // Exponentially decaying intensity: inverse-CDF of an exponential
  // truncated to [0, duration], so most offsets land early in the window.
  const double span = static_cast<double>(spec.duration_secs);
  const double kRate = 3.0;  // intensity e-folds ~3 times over the window
  const double norm = 1.0 - std::exp(-kRate);
  for (uint64_t i = 1; i < spec.size; ++i) {
    double u = rng->NextDouble();
    double frac = -std::log(1.0 - u * norm) / kRate;
    times.push_back(spec.start + static_cast<Timestamp>(frac * span));
  }
  std::sort(times.begin(), times.end());
  return times;
}

size_t EventModel::SampleRtTarget(Random* rng, size_t i) const {
  // Mix of preferential attachment to the root (breaking news pattern) and
  // recency (conversation pattern).
  if (rng->Bernoulli(0.4)) return 0;  // re-share the origin
  if (rng->Bernoulli(0.5)) {
    // Recent message: within the last 8.
    size_t window = std::min<size_t>(i, 8);
    return i - 1 - rng->Uniform(window);
  }
  return rng->Uniform(i);  // uniform over history
}

}  // namespace microprov
