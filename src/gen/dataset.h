#ifndef MICROPROV_GEN_DATASET_H_
#define MICROPROV_GEN_DATASET_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "gen/generator.h"
#include "stream/message.h"

namespace microprov {

/// Generates (or loads from a cache file, if present and matching) a
/// dataset. Figure harnesses share datasets this way so the 700k-message
/// stream is synthesized once per checkout, not once per bench binary.
///
/// The cache key is `<dir>/stream_seed<seed>_n<total>.tsv`; pass an empty
/// `cache_dir` to skip caching.
StatusOr<std::vector<Message>> GenerateOrLoadDataset(
    const GeneratorOptions& options, const std::string& cache_dir);

/// Fast sanity statistics over a dataset (used by tests and the harness
/// banner): counts per kind and basic temporal extent.
struct DatasetStats {
  uint64_t total = 0;
  uint64_t retweets = 0;
  uint64_t with_hashtags = 0;
  uint64_t with_urls = 0;
  Timestamp min_date = 0;
  Timestamp max_date = 0;
  double avg_text_length = 0;
};

DatasetStats ComputeDatasetStats(const std::vector<Message>& messages);

}  // namespace microprov

#endif  // MICROPROV_GEN_DATASET_H_
