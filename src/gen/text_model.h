#ifndef MICROPROV_GEN_TEXT_MODEL_H_
#define MICROPROV_GEN_TEXT_MODEL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "gen/zipf.h"

namespace microprov {

/// Deterministic synthetic-English model. Builds a fixed vocabulary of
/// pronounceable words (syllable concatenation) with Zipfian background
/// frequencies, plus per-topic word subsets. Message texts mix topic words
/// with background words, which gives the text/keyword indicants a
/// realistic overlap structure (same-topic messages share words; unrelated
/// messages rarely collide beyond stopword-like high-frequency terms).
class TextModel {
 public:
  struct Options {
    size_t vocabulary_size = 6000;
    /// Zipf exponent for the background word distribution.
    double background_zipf = 1.05;
    uint64_t seed = 1;
  };

  explicit TextModel(const Options& options);

  /// The word with rank `i` (stable across runs with the same seed).
  const std::string& WordAt(size_t i) const { return words_[i]; }
  size_t vocabulary_size() const { return words_.size(); }

  /// Draws `count` distinct topical words for a new topic.
  std::vector<std::string> SampleTopicWords(Random* rng,
                                            size_t count) const;

  /// Composes message body text: `num_words` words, `topic_share` of them
  /// drawn from `topic_words` (when non-empty), the rest from the
  /// background distribution.
  std::string ComposeBody(Random* rng,
                          const std::vector<std::string>& topic_words,
                          size_t num_words, double topic_share) const;

  /// Short interjection like "wow", "ugh!!" used for noise messages.
  std::string ComposeInterjection(Random* rng) const;

 private:
  std::vector<std::string> words_;
  ZipfSampler background_;
};

}  // namespace microprov

#endif  // MICROPROV_GEN_TEXT_MODEL_H_
