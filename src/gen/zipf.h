#ifndef MICROPROV_GEN_ZIPF_H_
#define MICROPROV_GEN_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace microprov {

/// Samples ranks in [0, n) with probability proportional to
/// 1 / (rank+1)^s. Popularity of users, hashtags, and background topics in
/// micro-blog streams is famously Zipfian; the generator leans on this for
/// realistic head/tail shape. Precomputes the CDF (O(n) memory) and samples
/// by binary search (O(log n)).
class ZipfSampler {
 public:
  /// Requires n >= 1, s >= 0 (s == 0 is uniform).
  ZipfSampler(size_t n, double s);

  /// Returns a rank in [0, n); rank 0 is the most popular.
  size_t Sample(Random* rng) const;

  size_t n() const { return cdf_.size(); }

  /// Probability mass of `rank` (for tests).
  double Pmf(size_t rank) const;

 private:
  std::vector<double> cdf_;  // inclusive cumulative probability
};

/// Samples from a discrete power law on {x_min, x_min+1, ...} with exponent
/// `alpha` (> 1), truncated at `x_max`, via inverse-CDF of the continuous
/// Pareto. Event sizes in social streams follow this: most events are tiny,
/// a few are huge (paper Fig. 6(a)).
uint64_t SamplePowerLaw(Random* rng, uint64_t x_min, uint64_t x_max,
                        double alpha);

}  // namespace microprov

#endif  // MICROPROV_GEN_ZIPF_H_
