#ifndef MICROPROV_GEN_GENERATOR_H_
#define MICROPROV_GEN_GENERATOR_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "gen/event_model.h"
#include "gen/text_model.h"
#include "stream/message.h"

namespace microprov {

/// Knobs for a synthetic micro-blog stream. Defaults approximate the
/// paper's dataset shape: a two-month window in Aug–Sep 2009 at a scale the
/// caller picks with `total_messages` (the paper bulks 700k for most
/// figures and 4.25M for Fig. 9).
struct GeneratorOptions {
  uint64_t seed = 42;
  uint64_t total_messages = 700000;
  /// "2009-08-01 00:00:00".
  Timestamp start_date = 1248998400;
  int64_t duration_days = 61;

  /// Fraction of messages that are topic-free noise (short interjections,
  /// one-off statuses) — these mostly become singleton bundles.
  double noise_fraction = 0.30;

  size_t num_users = 40000;
  double user_zipf = 1.1;

  EventModelOptions event_options;
  TextModel::Options text_options;

  /// When true (default), each message's text is synthesized and its
  /// indicant fields are re-extracted from that text through the real
  /// tweet parser, so generated data exercises the full text pipeline.
  bool extract_indicants_from_text = true;
};

/// Explicitly injected event for showcase experiments (Fig. 10): named
/// hashtags, fixed start/size so benches and examples can find it again.
struct InjectedEvent {
  std::string name;
  Timestamp start = 0;
  uint64_t size = 0;
  int64_t duration_secs = 0;
  std::vector<std::string> hashtags;
  std::vector<std::string> urls;
  std::vector<std::string> topic_words;
  double rt_probability = 0.5;
};

/// Ground truth the generator knows about each message (for evaluation and
/// showcase rendering). Index-aligned with the generated message vector.
struct GroundTruth {
  /// Event id per message, or -1 for noise.
  std::vector<int64_t> event_of;
  /// Number of events generated (injected events get ids counting down
  /// from -2: first injected is -2, next -3, ...).
  int64_t num_events = 0;
};

/// Generates a full dataset: messages sorted by date with ids assigned in
/// date order, RT ground-truth ids resolved.
class StreamGenerator {
 public:
  explicit StreamGenerator(const GeneratorOptions& options);

  /// Adds a named event to be woven into the stream (call before
  /// Generate()).
  void Inject(InjectedEvent event);

  /// Produces the dataset. `truth` may be nullptr.
  std::vector<Message> Generate(GroundTruth* truth = nullptr);

 private:
  GeneratorOptions options_;
  TextModel text_model_;
  EventModel event_model_;
  std::vector<InjectedEvent> injected_;
};

}  // namespace microprov

#endif  // MICROPROV_GEN_GENERATOR_H_
