#include "gen/text_model.h"

#include <unordered_set>

namespace microprov {

namespace {

constexpr const char* kOnsets[] = {"b",  "br", "c",  "ch", "d",  "dr",
                                   "f",  "fl", "g",  "gr", "h",  "j",
                                   "k",  "l",  "m",  "n",  "p",  "pr",
                                   "r",  "s",  "sh", "sl", "st", "t",
                                   "th", "tr", "v",  "w",  "z"};
constexpr const char* kNuclei[] = {"a",  "e",  "i",  "o",  "u",
                                   "ai", "ea", "ee", "oo", "ou"};
constexpr const char* kCodas[] = {"",  "",  "n", "r", "s", "t",
                                  "l", "m", "k", "nd", "ng", "st"};

constexpr const char* kInterjections[] = {
    "wow",  "ugh",   "argh", "sigh",  "yay",   "whew", "meh",
    "haha", "hmm",   "oops", "yikes", "woohoo", "bah",  "phew"};

std::string MakeWord(Random* rng, size_t syllables) {
  std::string w;
  for (size_t i = 0; i < syllables; ++i) {
    w += kOnsets[rng->Uniform(std::size(kOnsets))];
    w += kNuclei[rng->Uniform(std::size(kNuclei))];
    w += kCodas[rng->Uniform(std::size(kCodas))];
  }
  return w;
}

}  // namespace

TextModel::TextModel(const Options& options)
    : background_(options.vocabulary_size, options.background_zipf) {
  Random rng(options.seed);
  std::unordered_set<std::string> seen;
  words_.reserve(options.vocabulary_size);
  while (words_.size() < options.vocabulary_size) {
    size_t syllables = 1 + rng.Uniform(3);  // 1..3
    std::string w = MakeWord(&rng, syllables);
    if (w.size() < 3) continue;
    if (seen.insert(w).second) words_.push_back(std::move(w));
  }
}

std::vector<std::string> TextModel::SampleTopicWords(Random* rng,
                                                     size_t count) const {
  std::vector<std::string> topic;
  std::unordered_set<size_t> used;
  // Topic words come from the mid/tail of the vocabulary so that distinct
  // topics rarely share identifying words.
  const size_t head = words_.size() / 20;
  while (topic.size() < count && used.size() < words_.size() - head) {
    size_t idx = head + rng->Uniform(words_.size() - head);
    if (used.insert(idx).second) topic.push_back(words_[idx]);
  }
  return topic;
}

std::string TextModel::ComposeBody(
    Random* rng, const std::vector<std::string>& topic_words,
    size_t num_words, double topic_share) const {
  std::string out;
  for (size_t i = 0; i < num_words; ++i) {
    if (!out.empty()) out.push_back(' ');
    if (!topic_words.empty() && rng->Bernoulli(topic_share)) {
      out += topic_words[rng->Uniform(topic_words.size())];
    } else {
      out += words_[background_.Sample(rng)];
    }
  }
  return out;
}

std::string TextModel::ComposeInterjection(Random* rng) const {
  std::string out = kInterjections[rng->Uniform(std::size(kInterjections))];
  if (rng->Bernoulli(0.4)) out += "!!";
  return out;
}

}  // namespace microprov
