#ifndef MICROPROV_GEN_EVENT_MODEL_H_
#define MICROPROV_GEN_EVENT_MODEL_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "gen/text_model.h"

namespace microprov {

/// A synthetic real-world event: a burst of topically-coherent messages
/// with shared hashtags/URLs and an internal RT cascade. Events are the
/// ground-truth analogue of the paper's provenance bundles.
struct EventSpec {
  int64_t event_id = 0;
  Timestamp start = 0;
  /// Event activity window; messages decay exponentially over it.
  int64_t duration_secs = 0;
  /// Number of messages this event emits.
  uint64_t size = 0;
  /// 1-3 hashtags; the first is the event's signature tag.
  std::vector<std::string> hashtags;
  /// 0-3 short-link URLs associated with the event.
  std::vector<std::string> urls;
  /// Topical content words.
  std::vector<std::string> topic_words;
  /// Probability that a non-first message is an RT of an earlier one.
  double rt_probability = 0.35;
  /// Probability a message carries one of the event hashtags.
  double hashtag_probability = 0.8;
  /// Probability a message carries one of the event URLs.
  double url_probability = 0.25;
};

/// Parameters governing the population of events.
struct EventModelOptions {
  /// Power-law exponent of event sizes (>1; higher = fewer big events).
  double size_alpha = 2.1;
  uint64_t min_event_size = 2;
  uint64_t max_event_size = 4000;
  /// Base duration scale: a size-s event lasts roughly
  /// `duration_scale_secs * sqrt(s)` (jittered), capped by the stream span.
  double duration_scale_secs = 2.0 * kSecondsPerHour;
  size_t topic_words_per_event = 24;
  /// Fraction of events that reuse a globally popular hashtag instead of a
  /// unique one (creates cross-event indicant collisions, the hard case
  /// for the summary index).
  double shared_hashtag_fraction = 0.15;
  size_t num_shared_hashtags = 40;
};

/// Draws event populations and per-event message schedules.
class EventModel {
 public:
  EventModel(const EventModelOptions& options, const TextModel* text_model);

  /// Creates a new event starting at `start`, sized from the power law,
  /// constrained to end before `horizon`.
  EventSpec SampleEvent(Random* rng, int64_t event_id, Timestamp start,
                        Timestamp horizon) const;

  /// Emission times for an event's messages: front-loaded (exponential
  /// decay over the duration), sorted ascending, first at event start.
  std::vector<Timestamp> SampleEmissionTimes(Random* rng,
                                             const EventSpec& spec) const;

  /// For message #i (i >= 1) of an event, picks the index of the earlier
  /// message an RT re-shares: preferential attachment — earlier, more
  /// re-shared messages attract more re-shares, with a recency component.
  size_t SampleRtTarget(Random* rng, size_t i) const;

 private:
  EventModelOptions options_;
  const TextModel* text_model_;
  std::vector<std::string> shared_hashtags_;
};

}  // namespace microprov

#endif  // MICROPROV_GEN_EVENT_MODEL_H_
