#include "gen/dataset.h"

#include <algorithm>

#include "common/env.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "stream/stream_io.h"

namespace microprov {

StatusOr<std::vector<Message>> GenerateOrLoadDataset(
    const GeneratorOptions& options, const std::string& cache_dir) {
  std::string path;
  if (!cache_dir.empty()) {
    // The cache key folds in every generator knob (hashed), so stale
    // files are ignored when defaults or explicit options change.
    uint64_t params_hash = Fnv1a64(StringPrintf(
        "v2|%llu|%.3f|%zu|%.3f|%.3f|%llu|%llu|%.1f|%zu|%.3f|%zu|%zu|%.3f",
        (unsigned long long)options.duration_days, options.noise_fraction,
        options.num_users, options.user_zipf,
        options.event_options.size_alpha,
        (unsigned long long)options.event_options.min_event_size,
        (unsigned long long)options.event_options.max_event_size,
        options.event_options.duration_scale_secs,
        options.event_options.topic_words_per_event,
        options.event_options.shared_hashtag_fraction,
        options.event_options.num_shared_hashtags,
        options.text_options.vocabulary_size,
        options.text_options.background_zipf));
    path = StringPrintf("%s/stream_seed%llu_n%llu_%08llx.tsv",
                        cache_dir.c_str(), (unsigned long long)options.seed,
                        (unsigned long long)options.total_messages,
                        (unsigned long long)(params_hash & 0xFFFFFFFF));
    if (Env::Default()->FileExists(path)) {
      LOG_INFO() << "loading cached dataset " << path;
      return LoadMessages(path);
    }
  }
  LOG_INFO() << "generating dataset: " << HumanCount(options.total_messages)
             << " messages (seed " << options.seed << ")";
  StreamGenerator generator(options);
  std::vector<Message> messages = generator.Generate();
  if (!path.empty()) {
    MICROPROV_RETURN_IF_ERROR(
        Env::Default()->CreateDirIfMissing(cache_dir));
    MICROPROV_RETURN_IF_ERROR(SaveMessages(path, messages));
    LOG_INFO() << "cached dataset to " << path;
  }
  return messages;
}

DatasetStats ComputeDatasetStats(const std::vector<Message>& messages) {
  DatasetStats stats;
  stats.total = messages.size();
  if (messages.empty()) return stats;
  stats.min_date = messages.front().date;
  stats.max_date = messages.front().date;
  double text_total = 0;
  for (const Message& msg : messages) {
    if (msg.is_retweet) ++stats.retweets;
    if (!msg.hashtags.empty()) ++stats.with_hashtags;
    if (!msg.urls.empty()) ++stats.with_urls;
    stats.min_date = std::min(stats.min_date, msg.date);
    stats.max_date = std::max(stats.max_date, msg.date);
    text_total += static_cast<double>(msg.text.size());
  }
  stats.avg_text_length = text_total / static_cast<double>(stats.total);
  return stats;
}

}  // namespace microprov
