#include "gen/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace microprov {

ZipfSampler::ZipfSampler(size_t n, double s) {
  assert(n >= 1);
  cdf_.resize(n);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against FP drift
}

size_t ZipfSampler::Sample(Random* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t rank) const {
  if (rank >= cdf_.size()) return 0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

uint64_t SamplePowerLaw(Random* rng, uint64_t x_min, uint64_t x_max,
                        double alpha) {
  assert(alpha > 1.0 && x_min >= 1 && x_max >= x_min);
  double u = rng->NextDouble();
  while (u >= 1.0) u = rng->NextDouble();
  double x = static_cast<double>(x_min) *
             std::pow(1.0 - u, -1.0 / (alpha - 1.0));
  if (x > static_cast<double>(x_max)) return x_max;
  return static_cast<uint64_t>(x);
}

}  // namespace microprov
