#include "common/crc32c.h"

#include <array>

namespace microprov {
namespace crc32c {

namespace {

// Table-driven CRC-32C (polynomial 0x1EDC6F41, reflected 0x82F63B78),
// generated at static-init time into a constexpr-friendly array.
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : (crc >> 1);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Extend(uint32_t init_crc, std::string_view data) {
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  for (unsigned char c : data) {
    crc = kTable[(crc ^ c) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace microprov
