#include "common/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define MICROPROV_CRC32C_X86 1
#endif

namespace microprov {
namespace crc32c {

namespace {

// Table-driven CRC-32C (polynomial 0x1EDC6F41, reflected 0x82F63B78),
// generated at static-init time into a constexpr-friendly array. This
// is the portable fallback; on x86 with SSE4.2 the dedicated crc32
// instruction computes the same polynomial an order of magnitude
// faster, which matters because every WAL frame, checkpoint image, and
// delta segment is CRC-framed — on small machines the checksum is a
// visible slice of the durability tax.
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : (crc >> 1);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

#ifdef MICROPROV_CRC32C_X86
// `crc` is the raw (pre-inverted) running remainder.
__attribute__((target("sse4.2"))) uint32_t ExtendHardware(
    uint32_t crc, std::string_view data) {
  const char* p = data.data();
  size_t n = data.size();
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, sizeof(chunk));
    crc64 = _mm_crc32_u64(crc64, chunk);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n > 0) {
    crc = _mm_crc32_u8(crc, static_cast<unsigned char>(*p));
    ++p;
    --n;
  }
  return crc;
}
#endif

}  // namespace

uint32_t Extend(uint32_t init_crc, std::string_view data) {
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
#ifdef MICROPROV_CRC32C_X86
  static const bool have_hw = __builtin_cpu_supports("sse4.2");
  if (have_hw) return ExtendHardware(crc, data) ^ 0xFFFFFFFFu;
#endif
  for (unsigned char c : data) {
    crc = kTable[(crc ^ c) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace crc32c
}  // namespace microprov
