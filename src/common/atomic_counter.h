#ifndef MICROPROV_COMMON_ATOMIC_COUNTER_H_
#define MICROPROV_COMMON_ATOMIC_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace microprov {

/// Monotonic counter a worker thread bumps and any thread may read
/// (service ingest statistics). Relaxed ordering: readers want a recent
/// value, not a synchronization point — cross-thread visibility of the
/// data the count describes is established elsewhere (the shard flush
/// barrier).
class AtomicCounter {
 public:
  AtomicCounter() = default;
  AtomicCounter(const AtomicCounter&) = delete;
  AtomicCounter& operator=(const AtomicCounter&) = delete;

  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A timestamp high-water mark writable from one thread and readable from
/// others (the service clock follows the newest message date seen).
class AtomicWatermark {
 public:
  AtomicWatermark() = default;

  /// Raises the mark to `t` if later than the current value.
  void Advance(int64_t t) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (t > cur &&
           !value_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

}  // namespace microprov

#endif  // MICROPROV_COMMON_ATOMIC_COUNTER_H_
