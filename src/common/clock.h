#ifndef MICROPROV_COMMON_CLOCK_H_
#define MICROPROV_COMMON_CLOCK_H_

#include <cstdint>
#include <string>

namespace microprov {

/// Timestamps throughout the library are seconds since the Unix epoch.
using Timestamp = int64_t;

constexpr Timestamp kSecondsPerMinute = 60;
constexpr Timestamp kSecondsPerHour = 3600;
constexpr Timestamp kSecondsPerDay = 86400;

/// Source of "now" for the provenance engine. The paper replays an archived
/// stream and treats the latest message's post date as the current time; the
/// engine therefore never reads the wall clock directly.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Timestamp Now() const = 0;
};

/// Clock driven by the stream replayer: Advance() moves time forward
/// monotonically (out-of-order timestamps do not move it back).
class SimulatedClock final : public Clock {
 public:
  explicit SimulatedClock(Timestamp start = 0) : now_(start) {}

  Timestamp Now() const override { return now_; }

  /// Moves the clock to `t` if `t` is later than the current time.
  void Advance(Timestamp t) {
    if (t > now_) now_ = t;
  }

  /// Sets the clock unconditionally (tests only).
  void Set(Timestamp t) { now_ = t; }

 private:
  Timestamp now_;
};

/// Wall-clock-backed implementation for interactive examples.
class SystemClock final : public Clock {
 public:
  Timestamp Now() const override;
};

/// Formats as "YYYY-MM-DD HH:MM:SS" (UTC).
std::string FormatTimestamp(Timestamp t);

/// Parses "YYYY-MM-DD HH:MM:SS" (UTC). Returns -1 on malformed input.
Timestamp ParseTimestamp(const std::string& s);

/// Monotonic nanosecond counter for measuring elapsed real time in the
/// benchmark harness (never used by the engine's logic).
int64_t MonotonicNanos();

}  // namespace microprov

#endif  // MICROPROV_COMMON_CLOCK_H_
