#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace microprov {

void ExactHistogram::Add(int64_t value) {
  ++buckets_[value];
  ++count_;
  sum_ += static_cast<double>(value);
}

void ExactHistogram::Merge(const ExactHistogram& other) {
  for (const auto& [v, c] : other.buckets_) {
    buckets_[v] += c;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

int64_t ExactHistogram::min() const {
  return buckets_.empty() ? 0 : buckets_.begin()->first;
}

int64_t ExactHistogram::max() const {
  return buckets_.empty() ? 0 : buckets_.rbegin()->first;
}

double ExactHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t ExactHistogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (std::isnan(p)) p = 0;
  p = std::clamp(p, 0.0, 100.0);
  if (p == 0) return min();
  if (p == 100) return max();
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (const auto& [v, c] : buckets_) {
    seen += c;
    if (static_cast<double>(seen) >= target) return v;
  }
  return buckets_.rbegin()->first;
}

std::string ExactHistogram::ToAsciiChart(int num_buckets,
                                         int bar_width) const {
  std::string out;
  if (count_ == 0) return "(empty)\n";
  const int64_t lo = min();
  const int64_t hi = max();
  const int64_t width =
      std::max<int64_t>(1, (hi - lo + num_buckets) / num_buckets);
  std::vector<uint64_t> bars(static_cast<size_t>(num_buckets), 0);
  for (const auto& [v, c] : buckets_) {
    size_t idx = static_cast<size_t>((v - lo) / width);
    if (idx >= bars.size()) idx = bars.size() - 1;
    bars[idx] += c;
  }
  const uint64_t peak = *std::max_element(bars.begin(), bars.end());
  for (int i = 0; i < num_buckets; ++i) {
    const int64_t b_lo = lo + i * width;
    const int64_t b_hi = b_lo + width - 1;
    const uint64_t c = bars[static_cast<size_t>(i)];
    int len = peak == 0 ? 0
                        : static_cast<int>(static_cast<double>(c) /
                                           static_cast<double>(peak) *
                                           bar_width);
    StringAppendF(&out, "%8lld..%-8lld %10llu |%s\n",
                  (long long)b_lo, (long long)b_hi, (unsigned long long)c,
                  std::string(static_cast<size_t>(len), '#').c_str());
  }
  return out;
}

std::vector<uint64_t> ExactHistogram::BucketizeByEdges(
    const std::vector<int64_t>& edges) const {
  std::vector<uint64_t> out(edges.size(), 0);
  for (const auto& [v, c] : buckets_) {
    // Find the last edge <= v.
    auto it = std::upper_bound(edges.begin(), edges.end(), v);
    if (it == edges.begin()) continue;  // below the first edge
    out[static_cast<size_t>(it - edges.begin() - 1)] += c;
  }
  return out;
}

LatencyHistogram::LatencyHistogram() {
  // ~90 buckets: 1ns .. ~100s growing by ~1.3x.
  uint64_t b = 1;
  while (b < 100ULL * 1000 * 1000 * 1000) {
    boundaries_.push_back(b);
    uint64_t next = b + std::max<uint64_t>(1, b * 3 / 10);
    b = next;
  }
  boundaries_.push_back(UINT64_MAX);
  counts_.assign(boundaries_.size(), 0);
}

void LatencyHistogram::Add(uint64_t nanos) {
  auto it =
      std::lower_bound(boundaries_.begin(), boundaries_.end(), nanos);
  ++counts_[static_cast<size_t>(it - boundaries_.begin())];
  ++count_;
  sum_ += static_cast<double>(nanos);
  max_seen_ = std::max(max_seen_, nanos);
}

double LatencyHistogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (std::isnan(p)) p = 0;
  p = std::clamp(p, 0.0, 100.0);
  if (p == 100) return max_seen_;
  // p == 0 degenerates to "the first sample's bucket" via target = 1.
  const double target =
      std::max(1.0, p / 100.0 * static_cast<double>(count_));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (static_cast<double>(seen) >= target) {
      // A bucket's upper bound can overshoot the largest sample in it;
      // never report a latency above one actually observed.
      return std::min(boundaries_[i], max_seen_);
    }
  }
  return max_seen_;
}

std::string LatencyHistogram::Summary() const {
  return StringPrintf(
      "count=%llu mean=%.0fns p50=%lluns p99=%lluns max=%lluns",
      (unsigned long long)count_, Mean(), (unsigned long long)Percentile(50),
      (unsigned long long)Percentile(99), (unsigned long long)max_seen_);
}

}  // namespace microprov
