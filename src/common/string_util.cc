#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace microprov {

std::vector<std::string> Split(std::string_view s, char delim,
                               bool keep_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) pos = s.size();
    std::string_view piece = s.substr(start, pos - start);
    if (keep_empty || !piece.empty()) out.emplace_back(piece);
    if (pos == s.size()) break;
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

namespace {
std::string VStringPrintf(const char* fmt, va_list ap) {
  va_list ap2;
  va_copy(ap2, ap);
  int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}
}  // namespace

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::string out = VStringPrintf(fmt, ap);
  va_end(ap);
  return out;
}

void StringAppendF(std::string* dst, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  dst->append(VStringPrintf(fmt, ap));
  va_end(ap);
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return StringPrintf("%llu B", (unsigned long long)bytes);
  return StringPrintf("%.1f %s", v, units[u]);
}

std::string HumanCount(uint64_t n) {
  if (n >= 1000000) {
    double m = static_cast<double>(n) / 1e6;
    return (n % 1000000 == 0) ? StringPrintf("%.0fm", m)
                              : StringPrintf("%.2fm", m);
  }
  if (n >= 1000) {
    double k = static_cast<double>(n) / 1e3;
    return (n % 1000 == 0) ? StringPrintf("%.0fk", k)
                           : StringPrintf("%.1fk", k);
  }
  return StringPrintf("%llu", (unsigned long long)n);
}

}  // namespace microprov
