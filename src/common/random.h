#ifndef MICROPROV_COMMON_RANDOM_H_
#define MICROPROV_COMMON_RANDOM_H_

#include <cstdint>

namespace microprov {

/// Deterministic, seedable PRNG (xoshiro256**). All dataset generation and
/// property tests use this so runs are reproducible across platforms,
/// independent of libstdc++'s distribution implementations.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniform in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Exponential with rate lambda (> 0), i.e. mean 1/lambda.
  double NextExponential(double lambda);

  /// Geometric-ish integer: number of Bernoulli(p) failures before success.
  uint32_t NextGeometric(double p);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace microprov

#endif  // MICROPROV_COMMON_RANDOM_H_
