#ifndef MICROPROV_COMMON_CACHE_H_
#define MICROPROV_COMMON_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace microprov {

/// Simple single-threaded LRU cache mapping Key -> Value with a capacity in
/// entries. Used by the on-disk bundle store's read path. Not thread-safe
/// (the engine is single-writer, matching the paper's ingest loop).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Inserts or overwrites; evicts the least-recently-used entry when full.
  void Put(const Key& key, Value value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      Touch(it);
      return;
    }
    if (capacity_ == 0) return;
    if (map_.size() >= capacity_) {
      const Key& victim = order_.back().first;
      map_.erase(victim);
      order_.pop_back();
      ++evictions_;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
  }

  /// Returns a copy of the cached value, promoting it to most-recent.
  std::optional<Value> Get(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    Touch(it);
    return it->second->second;
  }

  bool Contains(const Key& key) const { return map_.count(key) > 0; }

  void Erase(const Key& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return;
    order_.erase(it->second);
    map_.erase(it);
  }

  void Clear() {
    map_.clear();
    order_.clear();
  }

  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  using Entry = std::pair<Key, Value>;
  using ListIt = typename std::list<Entry>::iterator;

  void Touch(typename std::unordered_map<Key, ListIt, Hash>::iterator it) {
    order_.splice(order_.begin(), order_, it->second);
    it->second = order_.begin();
  }

  size_t capacity_;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<Key, ListIt, Hash> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace microprov

#endif  // MICROPROV_COMMON_CACHE_H_
