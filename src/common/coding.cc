#include "common/coding.h"

#include <cstring>

namespace microprov {

void EncodeFixed32(char* dst, uint32_t value) {
  dst[0] = static_cast<char>(value & 0xFF);
  dst[1] = static_cast<char>((value >> 8) & 0xFF);
  dst[2] = static_cast<char>((value >> 16) & 0xFF);
  dst[3] = static_cast<char>((value >> 24) & 0xFF);
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  PutFixed32(dst, static_cast<uint32_t>(value & 0xFFFFFFFFu));
  PutFixed32(dst, static_cast<uint32_t>(value >> 32));
}

bool GetFixed32(std::string_view* input, uint32_t* value) {
  if (input->size() < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(input->data());
  *value = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* input, uint64_t* value) {
  if (input->size() < 8) return false;
  uint32_t lo = 0, hi = 0;
  GetFixed32(input, &lo);
  GetFixed32(input, &hi);
  *value = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

bool GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  const auto* p = reinterpret_cast<const unsigned char*>(input->data());
  size_t n = input->size();
  for (size_t i = 0; i < n && i < 10; ++i) {
    uint64_t byte = p[i];
    result |= (byte & 0x7F) << (7 * i);
    if ((byte & 0x80) == 0) {
      if (i == 9 && byte > 1) return false;  // 64-bit overflow
      *value = result;
      input->remove_prefix(i + 1);
      return true;
    }
  }
  return false;
}

bool GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v = 0;
  std::string_view copy = *input;
  if (!GetVarint64(&copy, &v) || v > 0xFFFFFFFFull) return false;
  *value = static_cast<uint32_t>(v);
  *input = copy;
  return true;
}

void PutVarsint64(std::string* dst, int64_t value) {
  PutVarint64(dst, ZigZagEncode(value));
}

bool GetVarsint64(std::string_view* input, int64_t* value) {
  uint64_t v = 0;
  if (!GetVarint64(input, &v)) return false;
  *value = ZigZagDecode(v);
  return true;
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  std::string_view copy = *input;
  uint32_t len = 0;
  if (!GetVarint32(&copy, &len)) return false;
  if (copy.size() < len) return false;
  *value = copy.substr(0, len);
  copy.remove_prefix(len);
  *input = copy;
  return true;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace microprov
