#include "common/clock.h"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace microprov {

Timestamp SystemClock::Now() const {
  return static_cast<Timestamp>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string FormatTimestamp(Timestamp t) {
  std::time_t tt = static_cast<std::time_t>(t);
  std::tm tm{};
  gmtime_r(&tt, &tm);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec);
  return buf;
}

Timestamp ParseTimestamp(const std::string& s) {
  std::tm tm{};
  int year, mon, day, hour, min, sec;
  if (std::sscanf(s.c_str(), "%d-%d-%d %d:%d:%d", &year, &mon, &day, &hour,
                  &min, &sec) != 6) {
    return -1;
  }
  tm.tm_year = year - 1900;
  tm.tm_mon = mon - 1;
  tm.tm_mday = day;
  tm.tm_hour = hour;
  tm.tm_min = min;
  tm.tm_sec = sec;
  std::time_t tt = timegm(&tm);
  if (tt == static_cast<std::time_t>(-1)) return -1;
  return static_cast<Timestamp>(tt);
}

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace microprov
