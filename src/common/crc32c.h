#ifndef MICROPROV_COMMON_CRC32C_H_
#define MICROPROV_COMMON_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace microprov {
namespace crc32c {

/// Returns the CRC-32C (Castagnoli) of data, continuing from `init_crc`
/// (the CRC of preceding bytes; 0 for a fresh computation).
uint32_t Extend(uint32_t init_crc, std::string_view data);

/// CRC-32C of `data`.
inline uint32_t Value(std::string_view data) { return Extend(0, data); }

/// Masked CRC for storing alongside the data it covers (RocksDB-style):
/// a CRC of a string that contains embedded CRCs tends to be weak, so
/// stored CRCs are rotated and offset.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8ul;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace microprov

#endif  // MICROPROV_COMMON_CRC32C_H_
