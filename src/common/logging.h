#ifndef MICROPROV_COMMON_LOGGING_H_
#define MICROPROV_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace microprov {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum severity; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

// Usage: LOG_INFO() << "msg" << value;
// Filtering happens at emit time against the global level.
#define LOG_DEBUG() \
  ::microprov::internal_logging::LogMessage(::microprov::LogLevel::kDebug, __FILE__, __LINE__).stream()
#define LOG_INFO() \
  ::microprov::internal_logging::LogMessage(::microprov::LogLevel::kInfo, __FILE__, __LINE__).stream()
#define LOG_WARN() \
  ::microprov::internal_logging::LogMessage(::microprov::LogLevel::kWarn, __FILE__, __LINE__).stream()
#define LOG_ERROR() \
  ::microprov::internal_logging::LogMessage(::microprov::LogLevel::kError, __FILE__, __LINE__).stream()

}  // namespace microprov

#endif  // MICROPROV_COMMON_LOGGING_H_
