#include "common/task_pool.h"

namespace microprov {

TaskPool::TaskPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void TaskPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return stop_ || (batch_ != nullptr && batch_->next < batch_->n);
    });
    if (stop_) return;
    Batch* batch = batch_;
    const size_t i = batch->next++;
    lock.unlock();
    (*batch->fn)(i);
    lock.lock();
    // `batch` stays valid: ParallelFor keeps it alive until done == n,
    // and this claim has not been counted yet.
    if (++batch->done == batch->n) done_cv_.notify_all();
  }
}

void TaskPool::ParallelFor(size_t n,
                           const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  Batch batch;
  batch.fn = &fn;
  batch.n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &batch;
  }
  work_cv_.notify_all();
  // The caller claims indices alongside the workers.
  for (;;) {
    size_t i;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (batch.next >= batch.n) break;
      i = batch.next++;
    }
    fn(i);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++batch.done == batch.n) done_cv_.notify_all();
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&batch] { return batch.done == batch.n; });
  batch_ = nullptr;
}

}  // namespace microprov
