#ifndef MICROPROV_COMMON_SLAB_ARENA_H_
#define MICROPROV_COMMON_SLAB_ARENA_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace microprov {

/// Slab-allocated posting storage (the Earlybird allocation policy from
/// "Dynamic Memory Allocation Policies for Postings in Real-Time Twitter
/// Search", Asadi/Lin/Busch): memory is carved from large fixed blocks
/// into size-classed chunks, and each posting list is a linked chain of
/// chunks that grows geometrically — a term's first chunk is tiny, each
/// subsequent chunk is a class larger, so rare terms cost ~24 bytes while
/// hot terms amortize the link overhead across 4 KiB chunks.
///
/// Why not per-term std::vector: a 10M-message resident stream holds
/// millions of posting lists, each a separate malloc that reallocates as
/// it grows. That gives per-term heap churn on the ingest hot path and —
/// worse — no global ceiling: index memory is whatever the sum of
/// capacities happens to be. The arena inverts this: the unit of heap
/// allocation is the block (default 1 MiB), appends are O(1) bumps or
/// free-list pops, and the block count is the single number a budget can
/// govern.
///
/// Reclamation: freed chunks go to per-class free lists (the chunk's
/// `next` field doubles as the free-list link) and are reused before any
/// new block is allocated, so once an arena reaches its budget it stops
/// growing as long as eviction keeps feeding the free lists. The arena
/// never refuses an allocation — a caller that must append can always
/// append — but `NeedsEviction()` reports when the owner should evict
/// (at/over budget with little recyclable space left), which is how the
/// engine turns the budget into a hard ceiling: allocation pressure
/// triggers pool refinement, never OOM.
///
/// Refs are 32-bit handles (block index in the high bits, byte offset in
/// the low `log2(block_bytes)` bits), so chains cost 4 bytes per link,
/// survive block-vector growth, and cap an arena at 2^32 addressable
/// bytes (4 GiB with 1 MiB blocks) — per shard, far past the budget any
/// deployment would configure.
///
/// Thread contract: single-writer, like the engine/shard that owns it.
class SlabArena {
 public:
  using Ref = uint32_t;
  static constexpr Ref kNullRef = 0xFFFFFFFFu;
  static constexpr int kNumClasses = 4;
  /// Chunk header: free/chain link + fill + size class.
  static constexpr size_t kHeaderBytes = 8;
  static constexpr size_t kDefaultBlockBytes = 1u << 20;

  struct Options {
    /// Heap-allocation unit. Rounded up to a power of two and clamped to
    /// [8 KiB, 256 MiB]; must hold the largest chunk class.
    size_t block_bytes = kDefaultBlockBytes;
    /// Ceiling on block bytes held (0 = unbounded). The arena may exceed
    /// it transiently — appends never fail — but NeedsEviction() fires so
    /// the owner can reclaim; with eviction wired up the resident size
    /// stays within budget plus at most one block.
    size_t budget_bytes = 0;
    /// Payload bytes per size class, ascending; the geometric ladder a
    /// chain climbs as it grows. Each value is rounded up to a multiple
    /// of 8 (keeps chunks 8-aligned) and must fit a 16-bit fill counter.
    std::array<uint32_t, kNumClasses> class_payload_bytes = {16, 64, 512,
                                                             4096};
    /// Free-list slack below which NeedsEviction() fires when the arena
    /// is at budget (0 = block_bytes / 4).
    size_t eviction_headroom_bytes = 0;
  };

  struct Stats {
    size_t allocated_bytes = 0;  ///< heap bytes held in blocks
    size_t used_bytes = 0;       ///< bytes reserved by live chunks
    size_t free_bytes = 0;       ///< bytes parked on free lists
    size_t wasted_bytes = 0;     ///< block tails too small to salvage
    uint64_t blocks_allocated = 0;
    uint64_t chunks_carved = 0;    ///< fresh bump allocations
    uint64_t chunks_recycled = 0;  ///< free-list reuses
    uint64_t chunks_freed = 0;
  };

  /// A typed posting chain: chunks linked through the arena, entries of
  /// `T` packed into each chunk's payload. POD handle — store it by
  /// value in per-term tables; the arena owns all the memory behind it.
  template <typename T>
  struct Chain {
    Ref head = kNullRef;
    Ref tail = kNullRef;
    bool empty() const { return head == kNullRef; }
  };

  /// An untyped byte chain (varint-encoded text-index postings).
  struct ByteChain {
    Ref head = kNullRef;
    Ref tail = kNullRef;
    bool empty() const { return head == kNullRef; }
  };

  SlabArena();
  explicit SlabArena(const Options& options);
  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  // ---------------------------------------------------------------------
  // Chunk layer
  // ---------------------------------------------------------------------

  /// Allocates a chunk of `size_class`, recycling a freed chunk when one
  /// is available, else bump-carving from the current block, else
  /// opening a new block (even past budget — see Options::budget_bytes).
  Ref Allocate(int size_class);

  /// Returns the chunk to its class free list.
  void Free(Ref ref);

  uint8_t* Payload(Ref ref) { return Block(ref) + Offset(ref) + kHeaderBytes; }
  const uint8_t* Payload(Ref ref) const {
    return Block(ref) + Offset(ref) + kHeaderBytes;
  }

  Ref next(Ref ref) const { return Header(ref)->next; }
  void set_next(Ref ref, Ref next) { Header(ref)->next = next; }
  uint32_t used(Ref ref) const { return Header(ref)->used; }
  void set_used(Ref ref, uint32_t used) {
    Header(ref)->used = static_cast<uint16_t>(used);
  }
  int class_of(Ref ref) const { return Header(ref)->cls; }
  uint32_t capacity(Ref ref) const {
    return class_payload_[Header(ref)->cls];
  }

  int NextClass(int size_class) const {
    return size_class + 1 < kNumClasses ? size_class + 1 : size_class;
  }
  uint32_t class_payload(int size_class) const {
    return class_payload_[size_class];
  }

  // ---------------------------------------------------------------------
  // Typed chains
  // ---------------------------------------------------------------------

  /// O(1) append: fills the tail chunk, climbing the class ladder when a
  /// fresh chunk is needed.
  template <typename T>
  void Append(Chain<T>* chain, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) % 8 == 0 || sizeof(T) <= 8,
                  "entries must pack without padding holes");
    Ref tail = chain->tail;
    if (tail == kNullRef ||
        used(tail) + sizeof(T) > capacity(tail)) {
      const int cls = tail == kNullRef ? 0 : NextClass(class_of(tail));
      const Ref fresh = Allocate(cls);
      if (tail == kNullRef) {
        chain->head = fresh;
      } else {
        set_next(tail, fresh);
      }
      chain->tail = fresh;
      tail = fresh;
    }
    std::memcpy(Payload(tail) + used(tail), &value, sizeof(T));
    set_used(tail, used(tail) + static_cast<uint32_t>(sizeof(T)));
  }

  /// Visits every entry in chain order.
  template <typename T, typename Fn>
  void ForEach(const Chain<T>& chain, Fn&& fn) const {
    for (Ref ref = chain.head; ref != kNullRef; ref = next(ref)) {
      const uint8_t* payload = Payload(ref);
      const uint32_t n = used(ref) / static_cast<uint32_t>(sizeof(T));
      for (uint32_t i = 0; i < n; ++i) {
        T entry;
        std::memcpy(&entry, payload + i * sizeof(T), sizeof(T));
        fn(entry);
      }
    }
  }

  /// First entry matching `pred`, as a mutable pointer into the arena
  /// (valid until the chain is compacted or freed), or nullptr.
  template <typename T, typename Pred>
  T* FindIf(const Chain<T>& chain, Pred&& pred) {
    for (Ref ref = chain.head; ref != kNullRef; ref = next(ref)) {
      uint8_t* payload = Payload(ref);
      const uint32_t n = used(ref) / static_cast<uint32_t>(sizeof(T));
      for (uint32_t i = 0; i < n; ++i) {
        T* entry = reinterpret_cast<T*>(payload + i * sizeof(T));
        if (pred(*entry)) return entry;
      }
    }
    return nullptr;
  }

  /// Rewrites the chain keeping only entries where `keep` holds, packing
  /// survivors front-to-back over the chain's own chunks, then frees the
  /// chunks left empty. The tombstone-reclamation path: no allocation,
  /// entries keep their relative order, freed chunks go back to the
  /// pool. Returns the number of surviving entries.
  template <typename T, typename Pred>
  size_t Compact(Chain<T>* chain, Pred&& keep) {
    if (chain->empty()) return 0;
    Ref write_ref = chain->head;
    uint32_t write_off = 0;
    size_t survivors = 0;
    for (Ref ref = chain->head; ref != kNullRef; ref = next(ref)) {
      const uint8_t* payload = Payload(ref);
      const uint32_t n = used(ref) / static_cast<uint32_t>(sizeof(T));
      for (uint32_t i = 0; i < n; ++i) {
        T entry;
        std::memcpy(&entry, payload + i * sizeof(T), sizeof(T));
        if (!keep(entry)) continue;
        if (write_off + sizeof(T) > capacity(write_ref)) {
          set_used(write_ref, write_off);
          write_ref = next(write_ref);
          write_off = 0;
        }
        // The write cursor never passes the read cursor (it skips what
        // the read cursor already consumed), so this copy is safe.
        std::memcpy(Payload(write_ref) + write_off, &entry, sizeof(T));
        write_off += static_cast<uint32_t>(sizeof(T));
        ++survivors;
      }
    }
    if (survivors == 0) {
      FreeChain(chain->head);
      chain->head = chain->tail = kNullRef;
      return 0;
    }
    set_used(write_ref, write_off);
    FreeChain(next(write_ref));
    set_next(write_ref, kNullRef);
    chain->tail = write_ref;
    return survivors;
  }

  /// Frees every chunk of a typed chain.
  template <typename T>
  void FreeAll(Chain<T>* chain) {
    FreeChain(chain->head);
    chain->head = chain->tail = kNullRef;
  }

  // ---------------------------------------------------------------------
  // Byte chains
  // ---------------------------------------------------------------------

  /// Appends `n` bytes as one atom: the bytes never straddle a chunk
  /// boundary, so decoders can parse each chunk independently. Requires
  /// n <= the smallest class payload.
  void AppendBytes(ByteChain* chain, const void* data, size_t n);

  /// Frees every chunk of a byte chain.
  void FreeAll(ByteChain* chain) {
    FreeChain(chain->head);
    chain->head = chain->tail = kNullRef;
  }

  /// Total payload bytes a chain has reserved (capacity, not fill).
  template <typename ChainT>
  size_t ChainCapacityBytes(const ChainT& chain) const {
    size_t total = 0;
    for (Ref ref = chain.head; ref != kNullRef; ref = next(ref)) {
      total += capacity(ref) + kHeaderBytes;
    }
    return total;
  }

  // ---------------------------------------------------------------------
  // Budget & stats
  // ---------------------------------------------------------------------

  size_t block_bytes() const { return block_bytes_; }
  size_t budget_bytes() const { return budget_bytes_; }
  size_t allocated_bytes() const { return stats_.allocated_bytes; }

  /// At or past the budget (budget configured).
  bool over_budget() const {
    return budget_bytes_ > 0 && stats_.allocated_bytes >= budget_bytes_;
  }

  /// The owner should evict: the arena is at/over budget and the free
  /// lists are nearly empty, so continuing demand is about to force a
  /// block past the ceiling. Free bytes are a meaningful reserve here
  /// because over-budget allocation takes chunks from *any* class (see
  /// Allocate) — eviction refilling the lists, in whatever classes the
  /// dying chains used, genuinely absorbs future appends. Checked by
  /// the engine after every ingest: eviction kicks in while a reserve
  /// still exists, so the arena plateaus instead of creeping.
  bool NeedsEviction() const {
    return over_budget() && stats_.free_bytes < eviction_headroom_;
  }

  const Stats& stats() const { return stats_; }

 private:
  struct ChunkHeader {
    Ref next = kNullRef;
    uint16_t used = 0;
    uint8_t cls = 0;
    uint8_t reserved = 0;
  };
  static_assert(sizeof(ChunkHeader) == kHeaderBytes);

  uint32_t BlockIndex(Ref ref) const { return ref >> offset_bits_; }
  uint32_t Offset(Ref ref) const { return ref & offset_mask_; }
  Ref MakeRef(uint32_t block, uint32_t offset) const {
    return (block << offset_bits_) | offset;
  }

  uint8_t* Block(Ref ref) { return blocks_[BlockIndex(ref)].get(); }
  const uint8_t* Block(Ref ref) const {
    return blocks_[BlockIndex(ref)].get();
  }
  ChunkHeader* Header(Ref ref) {
    return reinterpret_cast<ChunkHeader*>(Block(ref) + Offset(ref));
  }
  const ChunkHeader* Header(Ref ref) const {
    return reinterpret_cast<const ChunkHeader*>(Block(ref) + Offset(ref));
  }

  size_t ChunkBytes(int size_class) const {
    return kHeaderBytes + class_payload_[size_class];
  }

  /// Carves the current block's remainder into the largest chunks that
  /// still fit and parks them on the free lists, so opening a new block
  /// wastes at most (smallest chunk - 1) bytes.
  void SalvageTail();
  void NewBlock();
  void FreeChain(Ref head);

  size_t block_bytes_ = 0;
  size_t budget_bytes_ = 0;
  size_t eviction_headroom_ = 0;
  uint32_t offset_bits_ = 0;
  uint32_t offset_mask_ = 0;
  uint32_t max_blocks_ = 0;
  std::array<uint32_t, kNumClasses> class_payload_ = {};
  std::vector<std::unique_ptr<uint8_t[]>> blocks_;
  size_t bump_ = 0;  ///< next free byte in the current (last) block
  std::array<Ref, kNumClasses> free_lists_;
  Stats stats_;
};

}  // namespace microprov

#endif  // MICROPROV_COMMON_SLAB_ARENA_H_
