#include "common/slab_arena.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace microprov {
namespace {

constexpr size_t kMinBlockBytes = 8u << 10;
constexpr size_t kMaxBlockBytes = 256u << 20;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

uint32_t Log2(size_t pow2) {
  uint32_t bits = 0;
  while ((size_t{1} << bits) < pow2) ++bits;
  return bits;
}

uint32_t RoundUp8(uint32_t v) { return (v + 7u) & ~7u; }

}  // namespace

SlabArena::SlabArena() : SlabArena(Options()) {}

SlabArena::SlabArena(const Options& options) {
  block_bytes_ = RoundUpPow2(
      std::clamp(options.block_bytes, kMinBlockBytes, kMaxBlockBytes));
  offset_bits_ = Log2(block_bytes_);
  offset_mask_ = static_cast<uint32_t>(block_bytes_ - 1);
  max_blocks_ = offset_bits_ >= 32 ? 1u : (1u << (32 - offset_bits_)) - 1;
  budget_bytes_ = options.budget_bytes;
  eviction_headroom_ = options.eviction_headroom_bytes > 0
                           ? options.eviction_headroom_bytes
                           : block_bytes_ / 4;
  uint32_t prev = 0;
  for (int c = 0; c < kNumClasses; ++c) {
    uint32_t payload = RoundUp8(std::max(options.class_payload_bytes[c], 8u));
    // Classes must ascend (the ladder walks upward) and fit the 16-bit
    // fill counter plus the header inside one block.
    payload = std::max(payload, prev);
    payload = std::min(payload, 0xFFF8u);
    payload = std::min(payload,
                       static_cast<uint32_t>(block_bytes_ - kHeaderBytes));
    class_payload_[c] = payload;
    prev = payload;
  }
  free_lists_.fill(kNullRef);
}

SlabArena::Ref SlabArena::Allocate(int size_class) {
  assert(size_class >= 0 && size_class < kNumClasses);
  Ref& free_head = free_lists_[size_class];
  if (free_head != kNullRef) {
    const Ref ref = free_head;
    ChunkHeader* h = Header(ref);
    free_head = h->next;
    h->next = kNullRef;
    h->used = 0;
    stats_.free_bytes -= ChunkBytes(size_class);
    stats_.used_bytes += ChunkBytes(size_class);
    ++stats_.chunks_recycled;
    return ref;
  }
  // At budget, growth is the last resort: serve the request from any
  // class with recyclable chunks — smaller ones first (the chain just
  // climbs the ladder in shorter steps), then larger (some payload slack
  // beats another block). A chunk keeps its own class, so capacity
  // bookkeeping is untouched. This is what makes the budget a ceiling
  // rather than a suggestion: eviction frees whatever classes the dying
  // chains happened to use, and over-budget demand takes any of them.
  if (over_budget()) {
    for (int c = size_class - 1; c >= 0; --c) {
      if (free_lists_[c] != kNullRef) return Allocate(c);
    }
    for (int c = size_class + 1; c < kNumClasses; ++c) {
      if (free_lists_[c] != kNullRef) return Allocate(c);
    }
  }
  const size_t need = ChunkBytes(size_class);
  if (blocks_.empty() || bump_ + need > block_bytes_) {
    SalvageTail();
    NewBlock();
  }
  const uint32_t block = static_cast<uint32_t>(blocks_.size() - 1);
  const uint32_t offset = static_cast<uint32_t>(bump_);
  bump_ += need;
  const Ref ref = MakeRef(block, offset);
  ChunkHeader* h = Header(ref);
  h->next = kNullRef;
  h->used = 0;
  h->cls = static_cast<uint8_t>(size_class);
  h->reserved = 0;
  stats_.used_bytes += need;
  ++stats_.chunks_carved;
  return ref;
}

void SlabArena::Free(Ref ref) {
  ChunkHeader* h = Header(ref);
  const int cls = h->cls;
  h->next = free_lists_[cls];
  h->used = 0;
  free_lists_[cls] = ref;
  stats_.used_bytes -= ChunkBytes(cls);
  stats_.free_bytes += ChunkBytes(cls);
  ++stats_.chunks_freed;
}

void SlabArena::FreeChain(Ref head) {
  while (head != kNullRef) {
    const Ref following = next(head);
    Free(head);
    head = following;
  }
}

void SlabArena::SalvageTail() {
  if (blocks_.empty()) return;
  const uint32_t block = static_cast<uint32_t>(blocks_.size() - 1);
  // Carve the remainder into the largest chunks that fit; whatever is
  // left is smaller than the smallest chunk and written off as waste.
  for (int c = kNumClasses - 1; c >= 0; --c) {
    const size_t chunk = ChunkBytes(c);
    while (bump_ + chunk <= block_bytes_) {
      const Ref ref = MakeRef(block, static_cast<uint32_t>(bump_));
      bump_ += chunk;
      ChunkHeader* h = Header(ref);
      h->cls = static_cast<uint8_t>(c);
      h->reserved = 0;
      h->used = 0;
      h->next = free_lists_[c];
      free_lists_[c] = ref;
      stats_.free_bytes += chunk;
    }
  }
  stats_.wasted_bytes += block_bytes_ - bump_;
  bump_ = block_bytes_;
}

void SlabArena::NewBlock() {
  if (blocks_.size() >= max_blocks_) {
    // 2^32 addressable bytes exhausted — a per-shard arena this size
    // means the budget wiring is broken; fail loudly rather than hand
    // out aliased refs.
    std::fprintf(stderr,
                 "SlabArena: exceeded %u blocks of %zu bytes (ref space "
                 "exhausted)\n",
                 max_blocks_, block_bytes_);
    std::abort();
  }
  blocks_.push_back(std::make_unique<uint8_t[]>(block_bytes_));
  bump_ = 0;
  stats_.allocated_bytes += block_bytes_;
  ++stats_.blocks_allocated;
}

void SlabArena::AppendBytes(ByteChain* chain, const void* data, size_t n) {
  assert(n <= class_payload_[0]);
  Ref tail = chain->tail;
  if (tail == kNullRef || used(tail) + n > capacity(tail)) {
    const int cls = tail == kNullRef ? 0 : NextClass(class_of(tail));
    const Ref fresh = Allocate(cls);
    if (tail == kNullRef) {
      chain->head = fresh;
    } else {
      set_next(tail, fresh);
    }
    chain->tail = fresh;
    tail = fresh;
  }
  std::memcpy(Payload(tail) + used(tail), data, n);
  set_used(tail, used(tail) + static_cast<uint32_t>(n));
}

}  // namespace microprov
