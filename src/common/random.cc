#include "common/random.h"

#include <cmath>

#include "common/hash.h"

namespace microprov {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) {
  // Seed the four lanes with splitmix64 so any seed (including 0) works.
  uint64_t x = seed;
  for (auto& lane : s_) {
    lane = Mix64(x++);
  }
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Random::NextExponential(double lambda) {
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return -std::log(u) / lambda;
}

uint32_t Random::NextGeometric(double p) {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return 0;
  double u = NextDouble();
  while (u <= 1e-300) u = NextDouble();
  return static_cast<uint32_t>(std::log(u) / std::log(1.0 - p));
}

}  // namespace microprov
