#ifndef MICROPROV_COMMON_STRING_UTIL_H_
#define MICROPROV_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace microprov {

/// Splits on a single delimiter character. Empty pieces are kept when
/// `keep_empty` is true (default false).
std::vector<std::string> Split(std::string_view s, char delim,
                               bool keep_empty = false);

/// Splits on any run of ASCII whitespace.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// ASCII-only lowercase copy.
std::string ToLower(std::string_view s);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Appends printf-style formatted text to *dst.
void StringAppendF(std::string* dst, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Human-readable byte size, e.g. "1.5 MB".
std::string HumanBytes(uint64_t bytes);

/// Human-readable count, e.g. "700k", "4.25m".
std::string HumanCount(uint64_t n);

}  // namespace microprov

#endif  // MICROPROV_COMMON_STRING_UTIL_H_
