#ifndef MICROPROV_COMMON_STATUS_H_
#define MICROPROV_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace microprov {

/// Error-handling vocabulary for the whole library. Library code never
/// throws; fallible operations return a `Status` (or `StatusOr<T>`,
/// see statusor.h) in the style of RocksDB / Arrow.
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kIOError = 3,
  kCorruption = 4,
  kNotSupported = 5,
  kResourceExhausted = 6,
  kFailedPrecondition = 7,
  kInternal = 8,
};

/// Returns a stable human-readable name, e.g. "IOError".
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type carrying success or a (code, message) pair.
///
/// The OK status carries no allocation. Statuses are copyable and movable;
/// a moved-from Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&& other) noexcept
      : code_(other.code_), message_(std::move(other.message_)) {
    other.code_ = StatusCode::kOk;
    other.message_.clear();
  }
  Status& operator=(Status&& other) noexcept {
    code_ = other.code_;
    message_ = std::move(other.message_);
    other.code_ = StatusCode::kOk;
    other.message_.clear();
    return *this;
  }

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, std::string(msg));
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, std::string(msg));
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, std::string(msg));
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, std::string(msg));
  }
  static Status NotSupported(std::string_view msg) {
    return Status(StatusCode::kNotSupported, std::string(msg));
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, std::string(msg));
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, std::string(msg));
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, std::string(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define MICROPROV_RETURN_IF_ERROR(expr)           \
  do {                                            \
    ::microprov::Status _st = (expr);             \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace microprov

#endif  // MICROPROV_COMMON_STATUS_H_
