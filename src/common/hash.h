#ifndef MICROPROV_COMMON_HASH_H_
#define MICROPROV_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace microprov {

/// 64-bit FNV-1a. Deterministic across platforms; used for term hashing and
/// deduplication keys, not for adversarial inputs.
uint64_t Fnv1a64(std::string_view data);

/// 64-bit avalanching mix (splitmix64 finalizer). Good for integer keys.
uint64_t Mix64(uint64_t x);

/// Combines two 64-bit hashes (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

/// Heterogeneous string hash: lets unordered containers keyed by
/// std::string be probed with a string_view without materializing a
/// temporary std::string (C++20 transparent lookup).
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// Hash functor for (int64, int64) pairs, e.g. provenance edges.
struct PairHash {
  size_t operator()(const std::pair<int64_t, int64_t>& p) const {
    return static_cast<size_t>(
        HashCombine(Mix64(static_cast<uint64_t>(p.first)),
                    Mix64(static_cast<uint64_t>(p.second))));
  }
};

}  // namespace microprov

#endif  // MICROPROV_COMMON_HASH_H_
