#ifndef MICROPROV_COMMON_STATUSOR_H_
#define MICROPROV_COMMON_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace microprov {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent. Constructing a StatusOr from an OK status is a
/// programming error and is converted to an Internal error.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed with OK status");
    }
  }

  /// Constructs from a value; the resulting StatusOr is OK.
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of `rexpr` (a StatusOr expression) to `lhs`, or returns
/// its status from the enclosing Status-returning function.
#define MICROPROV_ASSIGN_OR_RETURN(lhs, rexpr)      \
  auto MICROPROV_CONCAT_(_sor_, __LINE__) = (rexpr); \
  if (!MICROPROV_CONCAT_(_sor_, __LINE__).ok())      \
    return MICROPROV_CONCAT_(_sor_, __LINE__).status(); \
  lhs = std::move(MICROPROV_CONCAT_(_sor_, __LINE__)).value()

#define MICROPROV_CONCAT_INNER_(a, b) a##b
#define MICROPROV_CONCAT_(a, b) MICROPROV_CONCAT_INNER_(a, b)

}  // namespace microprov

#endif  // MICROPROV_COMMON_STATUSOR_H_
