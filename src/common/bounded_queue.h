#ifndef MICROPROV_COMMON_BOUNDED_QUEUE_H_
#define MICROPROV_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/clock.h"

namespace microprov {

/// Bounded blocking queue connecting one producer to one consumer (the
/// service layer's shard feed). Push blocks while the queue is full —
/// backpressure instead of dropping — and PopBatch drains up to a batch
/// of items in one lock acquisition so the consumer amortizes
/// synchronization across messages.
///
/// The implementation is mutex + condvar rather than a lock-free ring:
/// the per-item cost is dwarfed by downstream work (a provenance ingest
/// is microseconds), and blocking semantics fall out naturally.
template <typename T>
class BoundedSpscQueue {
 public:
  explicit BoundedSpscQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedSpscQueue(const BoundedSpscQueue&) = delete;
  BoundedSpscQueue& operator=(const BoundedSpscQueue&) = delete;

  /// Enqueues `item`, blocking while the queue holds `capacity` items.
  /// Returns false (and drops the item) if the queue was closed. When
  /// `blocked_out` is non-null it is set to whether this call had to
  /// wait for space (the caller's backpressure signal); when
  /// `blocked_nanos_out` is non-null the time spent waiting is added to
  /// it (the clock is read only on the blocked path, so the common
  /// fast path pays nothing).
  bool Push(T item, bool* blocked_out = nullptr,
            int64_t* blocked_nanos_out = nullptr) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool blocked = items_.size() >= capacity_ && !closed_;
    if (blocked_out != nullptr) *blocked_out = blocked;
    if (blocked) {
      ++blocked_pushes_;
      const int64_t wait_start =
          blocked_nanos_out != nullptr ? MonotonicNanos() : 0;
      not_full_.wait(lock,
                     [&] { return items_.size() < capacity_ || closed_; });
      if (blocked_nanos_out != nullptr) {
        *blocked_nanos_out += MonotonicNanos() - wait_start;
      }
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    ++total_pushed_;
    not_empty_.notify_one();
    return true;
  }

  /// Moves up to `max_items` into `*out` (appended), blocking until at
  /// least one item is available or the queue is closed. Returns the
  /// number of items delivered; 0 means closed-and-empty (consumer should
  /// exit).
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    size_t n = 0;
    while (!items_.empty() && n < max_items) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++n;
    }
    if (n > 0) not_full_.notify_one();
    return n;
  }

  /// Wakes all waiters; subsequent Push calls fail, PopBatch drains the
  /// remaining items and then returns 0.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  /// Items accepted over the queue's lifetime.
  uint64_t total_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_pushed_;
  }

  /// Push calls that found the queue full and had to wait (the
  /// backpressure signal surfaced in service stats).
  uint64_t blocked_pushes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return blocked_pushes_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  uint64_t total_pushed_ = 0;
  uint64_t blocked_pushes_ = 0;
};

}  // namespace microprov

#endif  // MICROPROV_COMMON_BOUNDED_QUEUE_H_
