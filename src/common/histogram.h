#ifndef MICROPROV_COMMON_HISTOGRAM_H_
#define MICROPROV_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace microprov {

/// Exact integer-valued histogram (value -> count). Used for the paper's
/// bundle-size and time-span distributions (Fig. 6), where values are small
/// enough that exact counting is cheap.
class ExactHistogram {
 public:
  void Add(int64_t value);
  void Merge(const ExactHistogram& other);

  uint64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const;
  double Mean() const;
  /// Returns the smallest value v such that at least p% of samples are
  /// <= v. p is clamped to [0, 100] (NaN acts as 0): p=0 yields min(),
  /// p=100 yields max(). Returns 0 on an empty histogram.
  int64_t Percentile(double p) const;

  const std::map<int64_t, uint64_t>& buckets() const { return buckets_; }

  /// Re-buckets into `num_buckets` equal-width ranges over [min, max] and
  /// renders rows of "lo..hi  count  bar" for terminal display.
  std::string ToAsciiChart(int num_buckets = 20, int bar_width = 40) const;

  /// Groups counts into caller-provided right-open ranges
  /// [edges[i], edges[i+1]); the final bucket is [edges.back(), +inf).
  std::vector<uint64_t> BucketizeByEdges(
      const std::vector<int64_t>& edges) const;

 private:
  std::map<int64_t, uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
};

/// Fixed-boundary latency histogram with exponentially growing buckets,
/// suitable for nanosecond timings in the microbenches.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Add(uint64_t nanos);
  uint64_t count() const { return count_; }
  double Mean() const;
  /// Bucket upper bound covering the p-th percentile, never above
  /// max_seen(). p is clamped to [0, 100] (NaN acts as 0); p=100 yields
  /// max_seen(). Returns 0 on an empty histogram.
  uint64_t Percentile(double p) const;
  uint64_t max_seen() const { return max_seen_; }

  std::string Summary() const;

 private:
  std::vector<uint64_t> boundaries_;  // upper bounds, ascending
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0;
  uint64_t max_seen_ = 0;
};

}  // namespace microprov

#endif  // MICROPROV_COMMON_HISTOGRAM_H_
