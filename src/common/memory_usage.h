#ifndef MICROPROV_COMMON_MEMORY_USAGE_H_
#define MICROPROV_COMMON_MEMORY_USAGE_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace microprov {

// Approximate heap-memory accounting (RocksDB ApproximateMemoryUsage
// style). The paper's Fig. 11(a) compares the resident cost of the three
// index configurations; since we cannot portably ask the allocator, every
// long-lived structure sums its parts with these helpers. Constants model a
// typical 64-bit glibc malloc layout; absolute numbers are approximate but
// *relative* growth (flat vs. linear) — which is what the figure shows — is
// faithful.

/// Per-allocation malloc bookkeeping overhead.
inline constexpr size_t kMallocOverhead = 16;

/// Heap bytes owned by a std::string (0 when stored inline via SSO).
inline size_t ApproxMemoryUsage(const std::string& s) {
  // libstdc++ SSO capacity is 15 bytes.
  if (s.capacity() <= 15) return 0;
  return s.capacity() + 1 + kMallocOverhead;
}

/// Heap bytes owned by a vector of POD-ish elements.
template <typename T>
size_t ApproxVectorUsage(const std::vector<T>& v) {
  if (v.capacity() == 0) return 0;
  return v.capacity() * sizeof(T) + kMallocOverhead;
}

/// Heap bytes owned by a vector of strings (buffer + per-string heap).
inline size_t ApproxMemoryUsage(const std::vector<std::string>& v) {
  size_t total = ApproxVectorUsage(v);
  for (const auto& s : v) total += ApproxMemoryUsage(s);
  return total;
}

/// Rough per-node cost of an unordered_map entry (node + bucket share).
template <typename K, typename V, typename H, typename E, typename A>
size_t ApproxMapOverhead(const std::unordered_map<K, V, H, E, A>& m) {
  // Node: key + value + next pointer (+ cached hash) + malloc header;
  // bucket array: one pointer per bucket.
  const size_t per_node = sizeof(K) + sizeof(V) + 2 * sizeof(void*) +
                          kMallocOverhead;
  return m.size() * per_node + m.bucket_count() * sizeof(void*);
}

/// Per-component memory accounting, one struct across every layer: a
/// ProvenanceEngine reports its own breakdown, ShardedEngine sums its
/// shards, and Service::Stats() carries the deployment-wide view. Each
/// field is an ApproxMemoryUsage-style estimate; `arena_bytes` is the
/// block memory held by the shard posting arenas (the quantity
/// MemoryBudget::index_arena_bytes bounds) and is disjoint from
/// `summary_index_bytes`, which covers only the index's own tables.
struct MemoryBreakdown {
  size_t pool_bytes = 0;
  size_t summary_index_bytes = 0;
  size_t text_index_bytes = 0;
  size_t arena_bytes = 0;
  size_t dictionary_bytes = 0;

  size_t total() const {
    return pool_bytes + summary_index_bytes + text_index_bytes +
           arena_bytes + dictionary_bytes;
  }

  MemoryBreakdown& operator+=(const MemoryBreakdown& other) {
    pool_bytes += other.pool_bytes;
    summary_index_bytes += other.summary_index_bytes;
    text_index_bytes += other.text_index_bytes;
    arena_bytes += other.arena_bytes;
    dictionary_bytes += other.dictionary_bytes;
    return *this;
  }
};

}  // namespace microprov

#endif  // MICROPROV_COMMON_MEMORY_USAGE_H_
