#ifndef MICROPROV_COMMON_MEMORY_USAGE_H_
#define MICROPROV_COMMON_MEMORY_USAGE_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace microprov {

// Approximate heap-memory accounting (RocksDB ApproximateMemoryUsage
// style). The paper's Fig. 11(a) compares the resident cost of the three
// index configurations; since we cannot portably ask the allocator, every
// long-lived structure sums its parts with these helpers. Constants model a
// typical 64-bit glibc malloc layout; absolute numbers are approximate but
// *relative* growth (flat vs. linear) — which is what the figure shows — is
// faithful.

/// Per-allocation malloc bookkeeping overhead.
inline constexpr size_t kMallocOverhead = 16;

/// Heap bytes owned by a std::string (0 when stored inline via SSO).
inline size_t ApproxMemoryUsage(const std::string& s) {
  // libstdc++ SSO capacity is 15 bytes.
  if (s.capacity() <= 15) return 0;
  return s.capacity() + 1 + kMallocOverhead;
}

/// Heap bytes owned by a vector of POD-ish elements.
template <typename T>
size_t ApproxVectorUsage(const std::vector<T>& v) {
  if (v.capacity() == 0) return 0;
  return v.capacity() * sizeof(T) + kMallocOverhead;
}

/// Heap bytes owned by a vector of strings (buffer + per-string heap).
inline size_t ApproxMemoryUsage(const std::vector<std::string>& v) {
  size_t total = ApproxVectorUsage(v);
  for (const auto& s : v) total += ApproxMemoryUsage(s);
  return total;
}

/// Rough per-node cost of an unordered_map entry (node + bucket share).
template <typename K, typename V, typename H, typename E, typename A>
size_t ApproxMapOverhead(const std::unordered_map<K, V, H, E, A>& m) {
  // Node: key + value + next pointer (+ cached hash) + malloc header;
  // bucket array: one pointer per bucket.
  const size_t per_node = sizeof(K) + sizeof(V) + 2 * sizeof(void*) +
                          kMallocOverhead;
  return m.size() * per_node + m.bucket_count() * sizeof(void*);
}

}  // namespace microprov

#endif  // MICROPROV_COMMON_MEMORY_USAGE_H_
