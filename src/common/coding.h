#ifndef MICROPROV_COMMON_CODING_H_
#define MICROPROV_COMMON_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace microprov {

// Little-endian fixed-width and LEB128 varint encoding primitives used by
// the storage layer and index segments. All Get* functions consume bytes
// from the front of `*input` and return false on underflow / malformed
// input without consuming.

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
/// Writes `value` little-endian into `dst[0..3]` (no bounds check) —
/// for patching a reserved length slot after its payload is encoded.
void EncodeFixed32(char* dst, uint32_t value);
bool GetFixed32(std::string_view* input, uint32_t* value);
bool GetFixed64(std::string_view* input, uint64_t* value);

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
bool GetVarint32(std::string_view* input, uint32_t* value);
bool GetVarint64(std::string_view* input, uint64_t* value);

/// ZigZag transform so small negative numbers stay small when varinted.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutVarsint64(std::string* dst, int64_t value);
bool GetVarsint64(std::string_view* input, int64_t* value);

/// Length-prefixed string: varint32 length followed by the bytes.
void PutLengthPrefixed(std::string* dst, std::string_view value);
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);

/// Number of bytes PutVarint64 would emit.
int VarintLength(uint64_t value);

}  // namespace microprov

#endif  // MICROPROV_COMMON_CODING_H_
