#ifndef MICROPROV_COMMON_TASK_POOL_H_
#define MICROPROV_COMMON_TASK_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace microprov {

/// A persistent pool of worker threads for fork-join fan-out (the query
/// path's per-shard dispatch). One ParallelFor call runs fn(0..n-1),
/// possibly concurrently, and returns once every index completed — the
/// calling thread participates, so a pool of W workers gives W+1 lanes
/// and a pool is never required for progress (TaskPool(0) degrades to a
/// plain loop).
///
/// Batches are serialized: concurrent ParallelFor calls from different
/// threads queue behind each other rather than interleaving their
/// indices. Workers idle on a condition variable between batches, so an
/// idle pool costs no CPU. Index claims are mutex-guarded — the unit of
/// work is a whole shard search, so claim overhead is noise.
class TaskPool {
 public:
  /// Starts `num_workers` threads (0 = no threads; ParallelFor then
  /// runs inline on the caller).
  explicit TaskPool(size_t num_workers);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Runs fn(i) for every i in [0, n), blocking until all complete.
  /// `fn` may be invoked concurrently from pool workers and the calling
  /// thread; exceptions must not escape fn.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_workers() const { return workers_.size(); }

 private:
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    size_t next = 0;  // next unclaimed index, guarded by mu_
    size_t done = 0;  // completed indices, guarded by mu_
  };

  void WorkerLoop();

  /// One batch at a time; holders of batch_mu_ own batch_ publication.
  std::mutex batch_mu_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Batch* batch_ = nullptr;  // guarded by mu_
  bool stop_ = false;       // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace microprov

#endif  // MICROPROV_COMMON_TASK_POOL_H_
