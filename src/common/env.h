#ifndef MICROPROV_COMMON_ENV_H_
#define MICROPROV_COMMON_ENV_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace microprov {

/// Buffered append-only file handle. Not thread-safe.
class WritableFile {
 public:
  ~WritableFile();
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  Status Append(std::string_view data);
  Status Flush();
  /// Flush + fsync.
  Status Sync();
  Status Close();

  /// Bytes appended so far (including unflushed).
  uint64_t size() const { return size_; }

 private:
  friend class Env;
  WritableFile(std::string name, std::FILE* f)
      : name_(std::move(name)), file_(f) {}
  std::string name_;
  std::FILE* file_;
  uint64_t size_ = 0;
};

/// Forward-only reader.
class SequentialFile {
 public:
  ~SequentialFile();
  SequentialFile(const SequentialFile&) = delete;
  SequentialFile& operator=(const SequentialFile&) = delete;

  /// Reads up to n bytes into *result (resized to the bytes actually read;
  /// empty at EOF).
  Status Read(size_t n, std::string* result);
  Status Skip(uint64_t n);

 private:
  friend class Env;
  SequentialFile(std::string name, std::FILE* f)
      : name_(std::move(name)), file_(f) {}
  std::string name_;
  std::FILE* file_;
};

/// Positioned reader.
class RandomAccessFile {
 public:
  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Reads up to n bytes at `offset` into *result.
  Status Read(uint64_t offset, size_t n, std::string* result) const;

 private:
  friend class Env;
  RandomAccessFile(std::string name, int fd)
      : name_(std::move(name)), fd_(fd) {}
  std::string name_;
  int fd_;
};

/// Minimal filesystem facade (POSIX-backed). A single process-wide instance
/// suffices; the indirection exists so tests can run in temp dirs and so the
/// storage layer never calls the OS directly.
class Env {
 public:
  static Env* Default();

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path);
  StatusOr<std::unique_ptr<WritableFile>> NewAppendableFile(
      const std::string& path);
  StatusOr<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path);
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path);

  bool FileExists(const std::string& path);
  StatusOr<uint64_t> GetFileSize(const std::string& path);
  Status CreateDirIfMissing(const std::string& path);
  /// fsyncs a directory so entries created/renamed inside it survive
  /// power loss (file data durability is the file's own Sync()).
  Status SyncDir(const std::string& path);
  Status RemoveFile(const std::string& path);
  Status RenameFile(const std::string& from, const std::string& to);
  StatusOr<std::vector<std::string>> ListDir(const std::string& path);

  /// Reads a whole file into *contents.
  Status ReadFileToString(const std::string& path, std::string* contents);
  /// Atomically (write temp + rename) writes `data` to `path`.
  Status WriteStringToFile(const std::string& path, std::string_view data);
};

}  // namespace microprov

#endif  // MICROPROV_COMMON_ENV_H_
