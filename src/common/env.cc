#include "common/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace microprov {

namespace {
Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + std::strerror(errno));
}
}  // namespace

// ---------------------------------------------------------------- Writable

WritableFile::~WritableFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WritableFile::Append(std::string_view data) {
  if (file_ == nullptr) return Status::FailedPrecondition("file closed");
  if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return ErrnoStatus("write " + name_);
  }
  size_ += data.size();
  return Status::OK();
}

Status WritableFile::Flush() {
  if (file_ == nullptr) return Status::FailedPrecondition("file closed");
  if (std::fflush(file_) != 0) return ErrnoStatus("flush " + name_);
  return Status::OK();
}

Status WritableFile::Sync() {
  MICROPROV_RETURN_IF_ERROR(Flush());
  if (::fsync(::fileno(file_)) != 0) return ErrnoStatus("fsync " + name_);
  return Status::OK();
}

Status WritableFile::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return ErrnoStatus("close " + name_);
  return Status::OK();
}

// -------------------------------------------------------------- Sequential

SequentialFile::~SequentialFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SequentialFile::Read(size_t n, std::string* result) {
  result->resize(n);
  size_t got = std::fread(result->data(), 1, n, file_);
  result->resize(got);
  if (got < n && std::ferror(file_)) return ErrnoStatus("read " + name_);
  return Status::OK();
}

Status SequentialFile::Skip(uint64_t n) {
  if (std::fseek(file_, static_cast<long>(n), SEEK_CUR) != 0) {
    return ErrnoStatus("seek " + name_);
  }
  return Status::OK();
}

// ------------------------------------------------------------ RandomAccess

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::Read(uint64_t offset, size_t n,
                              std::string* result) const {
  result->resize(n);
  ssize_t got = ::pread(fd_, result->data(), n,
                        static_cast<off_t>(offset));
  if (got < 0) return ErrnoStatus("pread " + name_);
  result->resize(static_cast<size_t>(got));
  return Status::OK();
}

// ------------------------------------------------------------------- Env

Env* Env::Default() {
  static Env* env = new Env();
  return env;
}

StatusOr<std::unique_ptr<WritableFile>> Env::NewWritableFile(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return ErrnoStatus("open(w) " + path);
  return std::unique_ptr<WritableFile>(new WritableFile(path, f));
}

StatusOr<std::unique_ptr<WritableFile>> Env::NewAppendableFile(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return ErrnoStatus("open(a) " + path);
  auto file = std::unique_ptr<WritableFile>(new WritableFile(path, f));
  long pos = std::ftell(f);
  if (pos > 0) file->size_ = static_cast<uint64_t>(pos);
  return file;
}

StatusOr<std::unique_ptr<SequentialFile>> Env::NewSequentialFile(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return ErrnoStatus("open(r) " + path);
  return std::unique_ptr<SequentialFile>(new SequentialFile(path, f));
}

StatusOr<std::unique_ptr<RandomAccessFile>> Env::NewRandomAccessFile(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open(ra) " + path);
  return std::unique_ptr<RandomAccessFile>(new RandomAccessFile(path, fd));
}

bool Env::FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

StatusOr<uint64_t> Env::GetFileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return ErrnoStatus("stat " + path);
  return static_cast<uint64_t>(st.st_size);
}

Status Env::CreateDirIfMissing(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return ErrnoStatus("mkdir " + path);
}

Status Env::SyncDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open(dir) " + path);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync(dir) " + path);
  return Status::OK();
}

Status Env::RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink " + path);
  return Status::OK();
}

Status Env::RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename " + from + " -> " + to);
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> Env::ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return ErrnoStatus("opendir " + path);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(std::move(name));
  }
  ::closedir(dir);
  return names;
}

Status Env::ReadFileToString(const std::string& path,
                             std::string* contents) {
  contents->clear();
  auto file_or = NewSequentialFile(path);
  if (!file_or.ok()) return file_or.status();
  auto& file = *file_or;
  std::string chunk;
  for (;;) {
    MICROPROV_RETURN_IF_ERROR(file->Read(1 << 16, &chunk));
    if (chunk.empty()) break;
    contents->append(chunk);
  }
  return Status::OK();
}

Status Env::WriteStringToFile(const std::string& path,
                              std::string_view data) {
  const std::string tmp = path + ".tmp";
  {
    auto file_or = NewWritableFile(tmp);
    if (!file_or.ok()) return file_or.status();
    auto& file = *file_or;
    MICROPROV_RETURN_IF_ERROR(file->Append(data));
    MICROPROV_RETURN_IF_ERROR(file->Close());
  }
  return RenameFile(tmp, path);
}

}  // namespace microprov
