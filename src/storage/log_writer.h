#ifndef MICROPROV_STORAGE_LOG_WRITER_H_
#define MICROPROV_STORAGE_LOG_WRITER_H_

#include <memory>
#include <string_view>

#include "common/env.h"
#include "common/status.h"
#include "storage/log_format.h"

namespace microprov {
namespace log {

/// Appends variable-length records to a block-framed, CRC-protected log
/// file. Each AddRecord is atomic with respect to the reader: a torn tail
/// (crash mid-write) is detected and cleanly ignored on recovery.
class Writer {
 public:
  /// Takes ownership of `file`; `initial_offset` is the file's current
  /// size when appending to an existing log.
  explicit Writer(std::unique_ptr<WritableFile> file,
                  uint64_t initial_offset = 0);

  Status AddRecord(std::string_view payload);
  Status Flush() { return file_->Flush(); }
  Status Sync() { return file_->Sync(); }
  Status Close() { return file_->Close(); }

  /// Byte offset the *next* record would start at (used by the bundle
  /// store's sparse index).
  uint64_t CurrentOffset() const;

 private:
  Status EmitPhysicalRecord(RecordType type, const char* data,
                            size_t length);

  std::unique_ptr<WritableFile> file_;
  size_t block_offset_;  // current offset within the block
  /// Reused to coalesce header + fragment into one file append per
  /// physical record (halves the buffered-write calls on the WAL
  /// flusher path).
  std::string emit_buf_;
};

}  // namespace log
}  // namespace microprov

#endif  // MICROPROV_STORAGE_LOG_WRITER_H_
