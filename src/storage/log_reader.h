#ifndef MICROPROV_STORAGE_LOG_READER_H_
#define MICROPROV_STORAGE_LOG_READER_H_

#include <memory>
#include <string>

#include "common/env.h"
#include "common/status.h"
#include "storage/log_format.h"

namespace microprov {
namespace log {

/// Sequentially reads records written by log::Writer. Corrupt or torn
/// fragments are skipped (with the byte count reported via
/// `dropped_bytes()`), so a crash mid-append loses at most the tail
/// record. A torn final frame — a partial header, a partial payload, or
/// a CRC mismatch on the very last frame in the file — is the expected
/// residue of a crash mid-append and reads as clean EOF; its bytes are
/// additionally classified under `torn_tail_bytes()` so recovery code
/// can distinguish an interrupted append from mid-log corruption.
class Reader {
 public:
  explicit Reader(std::unique_ptr<SequentialFile> file);

  /// Reads the next logical record into *record. Returns NotFound at EOF.
  Status ReadRecord(std::string* record);

  /// Byte offset of the first byte after the last returned record.
  uint64_t LastRecordEndOffset() const { return end_of_buffer_offset_ - buffer_.size() + buffer_pos_; }

  uint64_t dropped_bytes() const { return dropped_bytes_; }

  /// Subset of dropped_bytes() attributable to a torn tail (crash
  /// mid-append) rather than interior corruption.
  uint64_t torn_tail_bytes() const { return torn_tail_bytes_; }

 private:
  /// Reads the next physical fragment; returns its type or an eof/bad
  /// marker.
  enum ExtendedType : int {
    kEof = kMaxRecordType + 1,
    kBadRecord = kMaxRecordType + 2,
  };
  int ReadPhysicalRecord(std::string_view* fragment);

  std::unique_ptr<SequentialFile> file_;
  std::string buffer_;      // current block
  size_t buffer_pos_ = 0;   // read position within buffer_
  bool eof_ = false;
  uint64_t end_of_buffer_offset_ = 0;
  uint64_t dropped_bytes_ = 0;
  uint64_t torn_tail_bytes_ = 0;
};

}  // namespace log
}  // namespace microprov

#endif  // MICROPROV_STORAGE_LOG_READER_H_
