#include "storage/bundle_store.h"

#include <algorithm>

#include "common/crc32c.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "storage/bundle_codec.h"
#include "storage/log_format.h"

namespace microprov {

namespace {

// Fragment-level scanner over an in-memory log image. Yields each logical
// record with its start offset. Tolerates a torn tail.
class BufferLogScanner {
 public:
  explicit BufferLogScanner(std::string_view data) : data_(data) {}

  /// Returns false at end of data. On true, *record and *start_offset are
  /// set. Corrupt fragments are skipped.
  bool Next(std::string* record, uint64_t* start_offset) {
    record->clear();
    bool in_fragment = false;
    uint64_t record_start = 0;
    for (;;) {
      // Skip block trailers too small for a header.
      size_t in_block = pos_ % log::kBlockSize;
      if (log::kBlockSize - in_block < log::kHeaderSize) {
        pos_ += log::kBlockSize - in_block;
      }
      if (pos_ + log::kHeaderSize > data_.size()) return false;
      const unsigned char* h =
          reinterpret_cast<const unsigned char*>(data_.data() + pos_);
      const uint32_t masked_crc = static_cast<uint32_t>(h[0]) |
                                  (static_cast<uint32_t>(h[1]) << 8) |
                                  (static_cast<uint32_t>(h[2]) << 16) |
                                  (static_cast<uint32_t>(h[3]) << 24);
      const size_t length =
          static_cast<size_t>(h[4]) | (static_cast<size_t>(h[5]) << 8);
      const uint8_t type = h[6];
      if (type == log::kZeroType && length == 0) {
        pos_ += log::kHeaderSize;
        continue;
      }
      if (pos_ + log::kHeaderSize + length > data_.size()) return false;
      std::string_view payload(data_.data() + pos_ + log::kHeaderSize,
                               length);
      uint32_t crc = crc32c::Extend(
          0, std::string_view(data_.data() + pos_ + 6, 1));
      crc = crc32c::Extend(crc, payload);
      const uint64_t frag_start = pos_;
      pos_ += log::kHeaderSize + length;
      if (crc32c::Unmask(masked_crc) != crc ||
          type > log::kMaxRecordType) {
        record->clear();
        in_fragment = false;
        continue;  // skip corrupt fragment
      }
      switch (type) {
        case log::kFullType:
          record->assign(payload);
          *start_offset = frag_start;
          return true;
        case log::kFirstType:
          record->assign(payload);
          record_start = frag_start;
          in_fragment = true;
          break;
        case log::kMiddleType:
          if (in_fragment) record->append(payload);
          break;
        case log::kLastType:
          if (in_fragment) {
            record->append(payload);
            *start_offset = record_start;
            return true;
          }
          break;
        default:
          break;
      }
    }
  }

 private:
  std::string_view data_;
  uint64_t pos_ = 0;
};

}  // namespace

BundleStore::BundleStore(const Options& options)
    : options_(options), cache_(options.cache_entries) {}

BundleStore::~BundleStore() {
  if (writer_ != nullptr) {
    Status st = writer_->Close();
    if (!st.ok()) {
      LOG_WARN() << "closing bundle store log: " << st.ToString();
    }
  }
}

std::string BundleStore::LogFileName(uint32_t number) const {
  return StringPrintf("%s/bundles-%06u.log", options_.dir.c_str(), number);
}

StatusOr<std::unique_ptr<BundleStore>> BundleStore::Open(
    const Options& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("bundle store dir must be set");
  }
  MICROPROV_RETURN_IF_ERROR(
      Env::Default()->CreateDirIfMissing(options.dir));
  auto store = std::unique_ptr<BundleStore>(new BundleStore(options));
  MICROPROV_RETURN_IF_ERROR(store->RecoverFromDir());
  MICROPROV_RETURN_IF_ERROR(store->OpenNewLogFile());
  return store;
}

Status BundleStore::RecoverFromDir() {
  auto names_or = Env::Default()->ListDir(options_.dir);
  if (!names_or.ok()) return names_or.status();
  for (const std::string& name : *names_or) {
    unsigned number = 0;
    if (std::sscanf(name.c_str(), "bundles-%06u.log", &number) != 1) {
      continue;
    }
    file_numbers_.push_back(number);
  }
  std::sort(file_numbers_.begin(), file_numbers_.end());

  for (uint32_t number : file_numbers_) {
    std::string contents;
    MICROPROV_RETURN_IF_ERROR(Env::Default()->ReadFileToString(
        LogFileName(number), &contents));
    BufferLogScanner scanner(contents);
    std::string record;
    uint64_t offset = 0;
    while (scanner.Next(&record, &offset)) {
      auto bundle_or = DecodeBundle(record);
      if (!bundle_or.ok()) {
        LOG_WARN() << "skipping undecodable bundle record in file "
                   << number << " @" << offset << ": "
                   << bundle_or.status().ToString();
        continue;
      }
      const BundleId id = (*bundle_or)->id();
      index_[id] = Location{number, offset};  // latest record wins
      max_bundle_id_ = std::max(max_bundle_id_, id);
      IndexBundleTerms(**bundle_or);
    }
    current_file_number_ = number;
  }
  return Status::OK();
}

Status BundleStore::OpenNewLogFile() {
  ++current_file_number_;
  auto file_or =
      Env::Default()->NewWritableFile(LogFileName(current_file_number_));
  if (!file_or.ok()) return file_or.status();
  writer_ = std::make_unique<log::Writer>(std::move(*file_or));
  current_file_size_ = 0;
  file_numbers_.push_back(current_file_number_);
  // The new directory entry must itself be durable, or a power loss
  // after rotation can leave records in a file that recovery never sees.
  return Env::Default()->SyncDir(options_.dir);
}

Status BundleStore::Put(const Bundle& bundle) {
  obs::ScopedLatencyTimer timer(put_hist_);
  if (current_file_size_ >= options_.rotate_bytes) {
    MICROPROV_RETURN_IF_ERROR(writer_->Close());
    MICROPROV_RETURN_IF_ERROR(OpenNewLogFile());
  }
  std::string record;
  EncodeBundle(bundle, &record);
  const uint64_t offset = writer_->CurrentOffset();
  MICROPROV_RETURN_IF_ERROR(writer_->AddRecord(record));
  if (options_.sync_on_put) {
    MICROPROV_RETURN_IF_ERROR(writer_->Sync());
  }
  current_file_size_ = writer_->CurrentOffset();
  index_[bundle.id()] = Location{current_file_number_, offset};
  max_bundle_id_ = std::max(max_bundle_id_, bundle.id());
  cache_.Erase(bundle.id());
  IndexBundleTerms(bundle);
  ++puts_;
  if (puts_counter_ != nullptr) puts_counter_->Increment();
  if (bytes_counter_ != nullptr) {
    // Framed on-disk size of this record (includes block padding).
    bytes_counter_->Increment(current_file_size_ - offset);
  }
  if (bundles_gauge_ != nullptr) {
    bundles_gauge_->Set(static_cast<int64_t>(index_.size()));
  }
  return Status::OK();
}

void BundleStore::BindMetrics(obs::MetricsRegistry* registry,
                              const std::string& shard_label) {
  puts_counter_ =
      registry->GetCounter("microprov_store_puts_total", "",
                           "Bundle records appended to the on-disk store");
  bytes_counter_ = registry->GetCounter(
      "microprov_store_bytes_written_total", "",
      "Framed log bytes written by bundle dumps");
  put_hist_ =
      registry->GetHistogram("microprov_store_put_nanos", "",
                             "Latency of one bundle dump (encode+append)");
  bundles_gauge_ =
      registry->GetGauge("microprov_store_bundles", shard_label,
                         "Bundles resident in this store");
  bundles_gauge_->Set(static_cast<int64_t>(index_.size()));
}

void BundleStore::IndexBundleTerms(const Bundle& bundle) {
  if (!options_.enable_term_index) return;
  auto add = [&](const std::string& term) {
    std::vector<BundleId>& postings = term_index_[term];
    if (postings.empty() || postings.back() != bundle.id()) {
      postings.push_back(bundle.id());
    }
  };
  for (const auto& [tag, count] :
       bundle.ResolvedCounts(IndicantType::kHashtag)) {
    add(tag);
  }
  for (const auto& [word, count] :
       bundle.TopKeywords(options_.index_keywords_per_bundle)) {
    add(word);
  }
}

std::vector<BundleId> BundleStore::FindByTerm(
    const std::string& term) const {
  auto it = term_index_.find(term);
  if (it == term_index_.end()) return {};
  // Dedup (re-puts may append the same id twice, non-adjacently).
  std::vector<BundleId> out = it->second;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Status BundleStore::ReadRecordAt(uint32_t file_number, uint64_t offset,
                                 std::string* record) {
  auto file_or =
      Env::Default()->NewRandomAccessFile(LogFileName(file_number));
  if (!file_or.ok()) return file_or.status();
  auto& file = *file_or;

  record->clear();
  uint64_t pos = offset;
  bool first = true;
  for (;;) {
    // Skip block trailer when too little room remains for a header.
    size_t in_block = static_cast<size_t>(pos % log::kBlockSize);
    if (log::kBlockSize - in_block < log::kHeaderSize) {
      pos += log::kBlockSize - in_block;
    }
    std::string header;
    MICROPROV_RETURN_IF_ERROR(file->Read(pos, log::kHeaderSize, &header));
    if (header.size() < log::kHeaderSize) {
      return Status::Corruption("truncated record header");
    }
    const unsigned char* h =
        reinterpret_cast<const unsigned char*>(header.data());
    const uint32_t masked_crc = static_cast<uint32_t>(h[0]) |
                                (static_cast<uint32_t>(h[1]) << 8) |
                                (static_cast<uint32_t>(h[2]) << 16) |
                                (static_cast<uint32_t>(h[3]) << 24);
    const size_t length =
        static_cast<size_t>(h[4]) | (static_cast<size_t>(h[5]) << 8);
    const uint8_t type = h[6];
    if (type == log::kZeroType && length == 0) {
      pos += log::kHeaderSize;
      continue;
    }
    std::string payload;
    MICROPROV_RETURN_IF_ERROR(
        file->Read(pos + log::kHeaderSize, length, &payload));
    if (payload.size() < length) {
      return Status::Corruption("truncated record payload");
    }
    uint32_t crc =
        crc32c::Extend(0, std::string_view(header.data() + 6, 1));
    crc = crc32c::Extend(crc, payload);
    if (crc32c::Unmask(masked_crc) != crc) {
      return Status::Corruption("record checksum mismatch");
    }
    pos += log::kHeaderSize + length;
    switch (type) {
      case log::kFullType:
        if (!first) return Status::Corruption("unexpected FULL fragment");
        *record = std::move(payload);
        return Status::OK();
      case log::kFirstType:
        if (!first) return Status::Corruption("unexpected FIRST fragment");
        *record = std::move(payload);
        first = false;
        break;
      case log::kMiddleType:
        if (first) return Status::Corruption("unexpected MIDDLE fragment");
        record->append(payload);
        break;
      case log::kLastType:
        if (first) return Status::Corruption("unexpected LAST fragment");
        record->append(payload);
        return Status::OK();
      default:
        return Status::Corruption("bad fragment type");
    }
  }
}

StatusOr<std::shared_ptr<const Bundle>> BundleStore::Get(BundleId id) {
  if (auto cached = cache_.Get(id)) return *cached;
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound(
        StringPrintf("bundle %llu not in store", (unsigned long long)id));
  }
  // The current log file may have buffered data; flush before reading.
  if (it->second.file_number == current_file_number_) {
    MICROPROV_RETURN_IF_ERROR(writer_->Flush());
  }
  std::string record;
  MICROPROV_RETURN_IF_ERROR(
      ReadRecordAt(it->second.file_number, it->second.offset, &record));
  auto bundle_or = DecodeBundle(record);
  if (!bundle_or.ok()) return bundle_or.status();
  std::shared_ptr<const Bundle> bundle(std::move(*bundle_or));
  cache_.Put(id, bundle);
  return bundle;
}

std::vector<BundleId> BundleStore::ListBundleIds() const {
  std::vector<BundleId> ids;
  ids.reserve(index_.size());
  for (const auto& [id, loc] : index_) ids.push_back(id);
  return ids;
}

Status BundleStore::Scan(
    const std::function<Status(const Bundle& bundle)>& fn) {
  MICROPROV_RETURN_IF_ERROR(writer_->Flush());
  for (const auto& [id, loc] : index_) {
    std::string record;
    MICROPROV_RETURN_IF_ERROR(
        ReadRecordAt(loc.file_number, loc.offset, &record));
    auto bundle_or = DecodeBundle(record);
    if (!bundle_or.ok()) return bundle_or.status();
    MICROPROV_RETURN_IF_ERROR(fn(**bundle_or));
  }
  return Status::OK();
}

Status BundleStore::Flush() { return writer_->Flush(); }

Status BundleStore::Compact() {
  MICROPROV_RETURN_IF_ERROR(writer_->Flush());

  // Read every live record while the old files are still in place.
  struct Rewrite {
    BundleId id;
    std::string record;
  };
  std::vector<Rewrite> rewrites;
  rewrites.reserve(index_.size());
  for (const auto& [id, loc] : index_) {
    std::string record;
    MICROPROV_RETURN_IF_ERROR(
        ReadRecordAt(loc.file_number, loc.offset, &record));
    rewrites.push_back(Rewrite{id, std::move(record)});
  }
  // Deterministic order keeps the output file stable for a given state.
  std::sort(rewrites.begin(), rewrites.end(),
            [](const Rewrite& a, const Rewrite& b) { return a.id < b.id; });

  std::vector<uint32_t> old_files = file_numbers_;
  MICROPROV_RETURN_IF_ERROR(writer_->Close());
  writer_.reset();
  file_numbers_.clear();
  MICROPROV_RETURN_IF_ERROR(OpenNewLogFile());

  for (const Rewrite& rewrite : rewrites) {
    const uint64_t offset = writer_->CurrentOffset();
    MICROPROV_RETURN_IF_ERROR(writer_->AddRecord(rewrite.record));
    index_[rewrite.id] = Location{current_file_number_, offset};
  }
  MICROPROV_RETURN_IF_ERROR(writer_->Flush());
  current_file_size_ = writer_->CurrentOffset();

  // Old logs are dead now; remove them.
  for (uint32_t number : old_files) {
    MICROPROV_RETURN_IF_ERROR(
        Env::Default()->RemoveFile(LogFileName(number)));
  }
  ++compactions_;
  return Status::OK();
}

StatusOr<uint64_t> BundleStore::TotalLogBytes() const {
  uint64_t total = 0;
  for (uint32_t number : file_numbers_) {
    auto size_or = Env::Default()->GetFileSize(LogFileName(number));
    if (!size_or.ok()) return size_or.status();
    total += *size_or;
  }
  return total;
}

}  // namespace microprov
