#include "storage/bundle_codec.h"

#include <bit>

#include "common/coding.h"
#include "stream/message_codec.h"

namespace microprov {

namespace {
constexpr uint32_t kBundleCodecVersion = 1;
}  // namespace

void EncodeBundle(const Bundle& bundle, std::string* dst) {
  PutVarint32(dst, kBundleCodecVersion);
  PutVarint64(dst, bundle.id());
  PutVarint32(dst, bundle.closed() ? 1 : 0);
  PutVarint32(dst, static_cast<uint32_t>(bundle.size()));
  for (const BundleMessage& bm : bundle.messages()) {
    EncodeMessageBinary(bm.msg, dst);
    PutVarsint64(dst, bm.parent);
    PutVarint32(dst, static_cast<uint32_t>(bm.conn_type));
    PutFixed32(dst, std::bit_cast<uint32_t>(bm.conn_score));
  }
}

StatusOr<std::unique_ptr<Bundle>> DecodeBundle(std::string_view encoded) {
  uint32_t version = 0;
  uint64_t id = 0;
  uint32_t closed = 0;
  uint32_t count = 0;
  if (!GetVarint32(&encoded, &version) || version != kBundleCodecVersion) {
    return Status::Corruption("bad bundle codec version");
  }
  if (!GetVarint64(&encoded, &id) || !GetVarint32(&encoded, &closed) ||
      !GetVarint32(&encoded, &count)) {
    return Status::Corruption("truncated bundle header");
  }
  auto bundle = std::make_unique<Bundle>(id);
  for (uint32_t i = 0; i < count; ++i) {
    Message msg;
    MICROPROV_RETURN_IF_ERROR(DecodeMessageBinary(&encoded, &msg));
    int64_t parent = 0;
    uint32_t conn_type = 0;
    uint32_t score_bits = 0;
    if (!GetVarsint64(&encoded, &parent) ||
        !GetVarint32(&encoded, &conn_type) ||
        !GetFixed32(&encoded, &score_bits)) {
      return Status::Corruption("truncated bundle message entry");
    }
    if (conn_type > static_cast<uint32_t>(ConnectionType::kText)) {
      return Status::Corruption("bad connection type");
    }
    bundle->AddMessage(std::move(msg), parent,
                       static_cast<ConnectionType>(conn_type),
                       std::bit_cast<float>(score_bits));
  }
  if (closed != 0) bundle->Close();
  return bundle;
}

}  // namespace microprov
