#ifndef MICROPROV_STORAGE_BUNDLE_CODEC_H_
#define MICROPROV_STORAGE_BUNDLE_CODEC_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/statusor.h"
#include "core/bundle.h"

namespace microprov {

/// Serializes a bundle (metadata + every member message with its
/// provenance connection) into a compact binary record for the bundle
/// store's log files.
void EncodeBundle(const Bundle& bundle, std::string* dst);

/// Rebuilds a bundle from EncodeBundle output. Indicant summaries and time
/// ranges are reconstructed by replaying AddMessage, so a decoded bundle is
/// behaviorally identical to the original.
StatusOr<std::unique_ptr<Bundle>> DecodeBundle(std::string_view encoded);

}  // namespace microprov

#endif  // MICROPROV_STORAGE_BUNDLE_CODEC_H_
