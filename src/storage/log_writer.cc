#include "storage/log_writer.h"

#include <cassert>

#include "common/crc32c.h"

namespace microprov {
namespace log {

Writer::Writer(std::unique_ptr<WritableFile> file, uint64_t initial_offset)
    : file_(std::move(file)),
      block_offset_(static_cast<size_t>(initial_offset % kBlockSize)) {}

uint64_t Writer::CurrentOffset() const { return file_->size(); }

Status Writer::AddRecord(std::string_view payload) {
  const char* ptr = payload.data();
  size_t left = payload.size();

  bool begin = true;
  do {
    const size_t leftover = kBlockSize - block_offset_;
    if (leftover < kHeaderSize) {
      // Zero-fill the block trailer and switch to a new block.
      if (leftover > 0) {
        static const char kZeroes[kHeaderSize] = {0};
        MICROPROV_RETURN_IF_ERROR(
            file_->Append(std::string_view(kZeroes, leftover)));
      }
      block_offset_ = 0;
    }

    const size_t avail = kBlockSize - block_offset_ - kHeaderSize;
    const size_t fragment_length = left < avail ? left : avail;
    const bool end = (left == fragment_length);
    RecordType type;
    if (begin && end) {
      type = kFullType;
    } else if (begin) {
      type = kFirstType;
    } else if (end) {
      type = kLastType;
    } else {
      type = kMiddleType;
    }
    MICROPROV_RETURN_IF_ERROR(
        EmitPhysicalRecord(type, ptr, fragment_length));
    ptr += fragment_length;
    left -= fragment_length;
    begin = false;
  } while (left > 0);
  return Status::OK();
}

Status Writer::EmitPhysicalRecord(RecordType type, const char* data,
                                  size_t length) {
  assert(length <= 0xFFFF);
  assert(block_offset_ + kHeaderSize + length <= kBlockSize);

  char header[kHeaderSize];
  // CRC covers type byte + payload.
  uint32_t crc = crc32c::Extend(
      0, std::string_view(reinterpret_cast<const char*>(&type), 1));
  crc = crc32c::Extend(crc, std::string_view(data, length));
  crc = crc32c::Mask(crc);
  header[0] = static_cast<char>(crc & 0xFF);
  header[1] = static_cast<char>((crc >> 8) & 0xFF);
  header[2] = static_cast<char>((crc >> 16) & 0xFF);
  header[3] = static_cast<char>((crc >> 24) & 0xFF);
  header[4] = static_cast<char>(length & 0xFF);
  header[5] = static_cast<char>((length >> 8) & 0xFF);
  header[6] = static_cast<char>(type);

  emit_buf_.clear();
  emit_buf_.append(header, kHeaderSize);
  emit_buf_.append(data, length);
  MICROPROV_RETURN_IF_ERROR(file_->Append(emit_buf_));
  block_offset_ += kHeaderSize + length;
  return Status::OK();
}

}  // namespace log
}  // namespace microprov
