#ifndef MICROPROV_STORAGE_BUNDLE_STORE_H_
#define MICROPROV_STORAGE_BUNDLE_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cache.h"
#include "common/status.h"
#include "common/statusor.h"
#include "core/pool.h"
#include "obs/metrics.h"
#include "storage/log_writer.h"

namespace microprov {

/// The paper's "on-disk storage back-end ... used to keep finished bundles
/// that no longer receive updates" (Fig. 4). Bundles are appended as
/// records to rotating CRC-framed log files; an in-memory sparse index
/// (bundle id -> file, offset) supports point reads, with an LRU cache of
/// decoded bundles on the read path. Recovery rebuilds the index by
/// scanning the logs, tolerating a torn tail record.
class BundleStore final : public BundleArchive {
 public:
  struct Options {
    std::string dir;
    /// Start a new log file once the current one exceeds this.
    uint64_t rotate_bytes = 64ull << 20;
    /// Decoded-bundle LRU capacity (entries).
    size_t cache_entries = 256;
    /// fsync after every Put (durability vs. throughput).
    bool sync_on_put = false;
    /// Maintain an in-memory term index (hashtags + top keywords ->
    /// bundle ids) so queries can reach archived bundles. Rebuilt on
    /// recovery.
    bool enable_term_index = true;
    /// Top keywords per bundle fed into the term index.
    size_t index_keywords_per_bundle = 10;
  };

  static StatusOr<std::unique_ptr<BundleStore>> Open(const Options& options);

  ~BundleStore() override;

  /// Appends `bundle`; a later Put of the same id supersedes the earlier
  /// record.
  Status Put(const Bundle& bundle) override;

  /// Point read. Decodes from disk (through the LRU cache).
  StatusOr<std::shared_ptr<const Bundle>> Get(BundleId id);

  bool Contains(BundleId id) const { return index_.count(id) > 0; }
  uint64_t bundle_count() const { return index_.size(); }
  BundleId max_bundle_id() const { return max_bundle_id_; }
  BundleId MaxBundleId() const override { return max_bundle_id_; }

  /// All stored bundle ids (unordered).
  std::vector<BundleId> ListBundleIds() const;

  /// Archived bundles whose hashtags or top keywords contain `term`
  /// (deduplicated). Empty when the term index is disabled.
  std::vector<BundleId> FindByTerm(const std::string& term) const;

  /// Visits every stored bundle (decoded); stops on callback error.
  Status Scan(
      const std::function<Status(const Bundle& bundle)>& fn);

  Status Flush();

  /// Rewrites every live bundle record into fresh log files and deletes
  /// the old ones, reclaiming space held by superseded records (re-puts)
  /// and dead padding. Point-read locations are updated in place; the
  /// decoded-bundle cache stays valid (ids don't change).
  Status Compact();

  /// Total bytes across all current log files (for compaction policy).
  StatusOr<uint64_t> TotalLogBytes() const;

  uint64_t puts() const { return puts_; }
  uint64_t compactions() const { return compactions_; }
  uint64_t cache_hits() const { return cache_.hits(); }
  uint64_t cache_misses() const { return cache_.misses(); }

  /// Registers this store's metrics: shared dump counters/latency plus a
  /// per-instance archived-bundle gauge labeled `shard_label`. The
  /// registry must outlive the store.
  void BindMetrics(obs::MetricsRegistry* registry,
                   const std::string& shard_label);

 private:
  struct Location {
    uint32_t file_number = 0;
    uint64_t offset = 0;
  };

  explicit BundleStore(const Options& options);

  Status RecoverFromDir();
  Status OpenNewLogFile();
  void IndexBundleTerms(const Bundle& bundle);
  std::string LogFileName(uint32_t number) const;
  Status ReadRecordAt(uint32_t file_number, uint64_t offset,
                      std::string* record);

  Options options_;
  std::unordered_map<BundleId, Location> index_;
  std::unique_ptr<log::Writer> writer_;
  uint32_t current_file_number_ = 0;
  uint64_t current_file_size_ = 0;
  std::vector<uint32_t> file_numbers_;
  BundleId max_bundle_id_ = 0;
  LruCache<BundleId, std::shared_ptr<const Bundle>> cache_;
  std::unordered_map<std::string, std::vector<BundleId>> term_index_;
  uint64_t puts_ = 0;
  uint64_t compactions_ = 0;

  // Observability handles (null until BindMetrics; never owned).
  obs::Counter* puts_counter_ = nullptr;
  obs::Counter* bytes_counter_ = nullptr;
  obs::HistogramMetric* put_hist_ = nullptr;
  obs::Gauge* bundles_gauge_ = nullptr;
};

}  // namespace microprov

#endif  // MICROPROV_STORAGE_BUNDLE_STORE_H_
