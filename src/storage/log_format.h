#ifndef MICROPROV_STORAGE_LOG_FORMAT_H_
#define MICROPROV_STORAGE_LOG_FORMAT_H_

#include <cstdint>

namespace microprov {
namespace log {

// Record-log file format (LevelDB/RocksDB-style):
// the file is a sequence of 32 KiB blocks; each block holds fragments:
//   fragment := masked_crc32c(4) | length(2, LE) | type(1) | payload
// A record spans fragments typed FULL, or FIRST..MIDDLE*..LAST. Blocks end
// with zero-fill when fewer than kHeaderSize bytes remain.

enum RecordType : uint8_t {
  kZeroType = 0,  // padding / preallocated
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};

inline constexpr uint8_t kMaxRecordType = kLastType;
inline constexpr size_t kBlockSize = 32768;
inline constexpr size_t kHeaderSize = 4 + 2 + 1;

}  // namespace log
}  // namespace microprov

#endif  // MICROPROV_STORAGE_LOG_FORMAT_H_
