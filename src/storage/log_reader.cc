#include "storage/log_reader.h"

#include "common/crc32c.h"

namespace microprov {
namespace log {

Reader::Reader(std::unique_ptr<SequentialFile> file)
    : file_(std::move(file)) {}

int Reader::ReadPhysicalRecord(std::string_view* fragment) {
  for (;;) {
    if (buffer_.size() - buffer_pos_ < kHeaderSize) {
      if (eof_) {
        // Trailing partial header at EOF: a torn write; drop it.
        const uint64_t torn = buffer_.size() - buffer_pos_;
        dropped_bytes_ += torn;
        torn_tail_bytes_ += torn;
        buffer_pos_ = buffer_.size();
        return kEof;
      }
      // Whatever remains is block-trailer padding (the writer never
      // starts a header with < kHeaderSize left in a block): discard it
      // and load the next block.
      buffer_.clear();
      buffer_pos_ = 0;
      std::string chunk;
      Status st = file_->Read(kBlockSize, &chunk);
      if (!st.ok() || chunk.empty()) {
        eof_ = true;
        continue;
      }
      // A short read is the file's last block: remember it so a frame
      // failing its CRC there can be classified as a torn tail.
      if (chunk.size() < kBlockSize) eof_ = true;
      end_of_buffer_offset_ += chunk.size();
      buffer_ = std::move(chunk);
      continue;
    }

    const unsigned char* header = reinterpret_cast<const unsigned char*>(
        buffer_.data() + buffer_pos_);
    const uint32_t masked_crc =
        static_cast<uint32_t>(header[0]) |
        (static_cast<uint32_t>(header[1]) << 8) |
        (static_cast<uint32_t>(header[2]) << 16) |
        (static_cast<uint32_t>(header[3]) << 24);
    const size_t length = static_cast<size_t>(header[4]) |
                          (static_cast<size_t>(header[5]) << 8);
    const uint8_t type = header[6];

    if (type == kZeroType && length == 0) {
      // Block-trailer padding; skip to the end of this block region.
      buffer_pos_ += kHeaderSize;
      continue;
    }
    if (buffer_.size() - buffer_pos_ < kHeaderSize + length) {
      if (eof_) {
        const uint64_t torn = buffer_.size() - buffer_pos_;
        dropped_bytes_ += torn;
        torn_tail_bytes_ += torn;
        buffer_pos_ = buffer_.size();
        return kEof;
      }
      // Shouldn't happen with block-aligned writes; treat as corruption.
      dropped_bytes_ += buffer_.size() - buffer_pos_;
      buffer_pos_ = buffer_.size();
      return kBadRecord;
    }

    std::string_view payload(buffer_.data() + buffer_pos_ + kHeaderSize,
                             length);
    // CRC check covers type + payload.
    uint32_t crc = crc32c::Extend(
        0, std::string_view(buffer_.data() + buffer_pos_ + 6, 1));
    crc = crc32c::Extend(crc, payload);
    buffer_pos_ += kHeaderSize + length;
    if (crc32c::Unmask(masked_crc) != crc) {
      dropped_bytes_ += kHeaderSize + length;
      if (eof_ && buffer_pos_ == buffer_.size()) {
        // CRC mismatch on the very last frame of the file: the frame was
        // being appended when the process died. Clean EOF, not corruption.
        torn_tail_bytes_ += kHeaderSize + length;
        return kEof;
      }
      return kBadRecord;
    }
    if (type > kMaxRecordType) {
      dropped_bytes_ += kHeaderSize + length;
      return kBadRecord;
    }
    *fragment = payload;
    return type;
  }
}

Status Reader::ReadRecord(std::string* record) {
  record->clear();
  bool in_fragmented_record = false;
  for (;;) {
    std::string_view fragment;
    int type = ReadPhysicalRecord(&fragment);
    switch (type) {
      case kFullType:
        if (in_fragmented_record) {
          // Unfinished earlier record: drop it, return this one.
          dropped_bytes_ += record->size();
          record->clear();
        }
        record->assign(fragment.data(), fragment.size());
        return Status::OK();
      case kFirstType:
        if (in_fragmented_record) {
          dropped_bytes_ += record->size();
          record->clear();
        }
        record->assign(fragment.data(), fragment.size());
        in_fragmented_record = true;
        break;
      case kMiddleType:
        if (!in_fragmented_record) {
          dropped_bytes_ += fragment.size();
        } else {
          record->append(fragment.data(), fragment.size());
        }
        break;
      case kLastType:
        if (!in_fragmented_record) {
          dropped_bytes_ += fragment.size();
        } else {
          record->append(fragment.data(), fragment.size());
          return Status::OK();
        }
        break;
      case kEof:
        if (in_fragmented_record) {
          // An unfinished FIRST/MIDDLE chain at EOF is the tail of an
          // interrupted multi-block append.
          dropped_bytes_ += record->size();
          torn_tail_bytes_ += record->size();
          record->clear();
        }
        return Status::NotFound("end of log");
      case kBadRecord:
        if (in_fragmented_record) {
          dropped_bytes_ += record->size();
          record->clear();
          in_fragmented_record = false;
        }
        break;
      default:
        return Status::Corruption("unknown record type");
    }
  }
}

}  // namespace log
}  // namespace microprov
