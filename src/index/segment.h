#ifndef MICROPROV_INDEX_SEGMENT_H_
#define MICROPROV_INDEX_SEGMENT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "index/doc_store.h"
#include "index/memory_index.h"

namespace microprov {

/// Immutable on-disk snapshot of a MemoryIndex + DocStore. A segment file
/// is written atomically (temp + rename), CRC-protected, and contains:
///   header | term dictionary | postings blob | doc lengths | doc store
/// Readers load the dictionary eagerly and iterate postings in place.
///
/// The engine uses segments to persist the message-search index alongside
/// the bundle store so a restarted process can serve queries without
/// re-ingesting the stream.
Status WriteSegment(const MemoryIndex& index, const DocStore& docs,
                    const std::string& path);

class SegmentReader {
 public:
  static StatusOr<std::unique_ptr<SegmentReader>> Open(
      const std::string& path);

  uint32_t num_docs() const { return num_docs_; }
  double average_doc_length() const;
  uint32_t doc_length(DocId doc) const { return doc_lengths_[doc]; }
  uint32_t DocFreq(std::string_view term) const;
  PostingList::Iterator Postings(std::string_view term) const;

  int64_t ExternalId(DocId doc) const { return external_ids_[doc]; }
  const std::string& Snippet(DocId doc) const { return snippets_[doc]; }
  size_t num_terms() const { return dict_.size(); }

 private:
  SegmentReader() = default;

  struct TermEntry {
    uint32_t df = 0;
    uint64_t offset = 0;
    uint32_t length = 0;
  };

  std::unordered_map<std::string, TermEntry> dict_;
  std::string blob_;
  std::vector<uint32_t> doc_lengths_;
  std::vector<int64_t> external_ids_;
  std::vector<std::string> snippets_;
  uint64_t total_length_ = 0;
  uint32_t num_docs_ = 0;
};

}  // namespace microprov

#endif  // MICROPROV_INDEX_SEGMENT_H_
