#include "index/posting_list.h"

#include <cassert>

#include "common/coding.h"
#include "common/memory_usage.h"

namespace microprov {

void PostingList::Add(DocId doc, uint32_t tf) {
  assert(doc_count_ == 0 || doc >= last_doc_);
  if (doc_count_ > 0 && doc == last_doc_) {
    // Accumulating tf for the trailing doc would require re-encoding; the
    // in-memory index coalesces tf before calling Add, so this is a no-op
    // guard in release and an assert in debug.
    assert(false && "duplicate doc in posting list");
    return;
  }
  uint32_t delta = doc_count_ == 0 ? doc : doc - last_doc_;
  PutVarint32(&data_, delta);
  PutVarint32(&data_, tf);
  last_doc_ = doc;
  ++doc_count_;
}

std::vector<Posting> PostingList::Decode() const {
  std::vector<Posting> out;
  out.reserve(doc_count_);
  for (auto it = NewIterator(); it.Valid(); it.Next()) {
    out.push_back(it.posting());
  }
  return out;
}

size_t PostingList::ApproxMemoryUsage() const {
  return sizeof(PostingList) + ::microprov::ApproxMemoryUsage(data_);
}

PostingList::Iterator::Iterator(const PostingList* list)
    : Iterator(std::string_view(list->data_)) {}

PostingList::Iterator::Iterator(std::string_view encoded)
    : rest_(encoded) {
  valid_ = !rest_.empty();
  if (valid_) {
    uint32_t delta = 0, tf = 0;
    GetVarint32(&rest_, &delta);
    GetVarint32(&rest_, &tf);
    current_ = {delta, tf};
  }
}

void PostingList::Iterator::Next() {
  if (rest_.empty()) {
    valid_ = false;
    return;
  }
  uint32_t delta = 0, tf = 0;
  GetVarint32(&rest_, &delta);
  GetVarint32(&rest_, &tf);
  current_ = {current_.doc + delta, tf};
}

void PostingList::Iterator::SkipTo(DocId target) {
  while (valid_ && current_.doc < target) Next();
}

}  // namespace microprov
