#include "index/posting_list.h"

#include <cassert>

#include "common/coding.h"
#include "common/memory_usage.h"

namespace microprov {
namespace {

size_t EncodeVarint32(uint8_t* dst, uint32_t v) {
  size_t n = 0;
  while (v >= 0x80) {
    dst[n++] = static_cast<uint8_t>(v | 0x80);
    v >>= 7;
  }
  dst[n++] = static_cast<uint8_t>(v);
  return n;
}

}  // namespace

void PostingList::Add(DocId doc, uint32_t tf) {
  assert(doc_count_ == 0 || doc >= last_doc_);
  if (doc_count_ > 0 && doc == last_doc_) {
    // Accumulating tf for the trailing doc would require re-encoding; the
    // in-memory index coalesces tf before calling Add, so this is a no-op
    // guard in release and an assert in debug.
    assert(false && "duplicate doc in posting list");
    return;
  }
  uint32_t delta = doc_count_ == 0 ? doc : doc - last_doc_;
  if (arena_ != nullptr) {
    // Encode the pair on the stack and hand it to the arena whole, so a
    // pair never straddles a chunk (two varint32s fit the smallest
    // chunk class: 10 bytes max).
    uint8_t buf[10];
    size_t n = EncodeVarint32(buf, delta);
    n += EncodeVarint32(buf + n, tf);
    arena_->AppendBytes(&chain_, buf, n);
    encoded_bytes_ += static_cast<uint32_t>(n);
  } else {
    PutVarint32(&data_, delta);
    PutVarint32(&data_, tf);
  }
  last_doc_ = doc;
  ++doc_count_;
}

void PostingList::AppendEncodedTo(std::string* out) const {
  if (arena_ == nullptr) {
    out->append(data_);
    return;
  }
  for (SlabArena::Ref ref = chain_.head; ref != SlabArena::kNullRef;
       ref = arena_->next(ref)) {
    out->append(reinterpret_cast<const char*>(arena_->Payload(ref)),
                arena_->used(ref));
  }
}

std::vector<Posting> PostingList::Decode() const {
  std::vector<Posting> out;
  Decode(&out);
  return out;
}

void PostingList::Decode(std::vector<Posting>* out) const {
  out->clear();
  out->reserve(doc_count_);
  for (auto it = NewIterator(); it.Valid(); it.Next()) {
    out->push_back(it.posting());
  }
}

void PostingList::FreeStorage() {
  if (arena_ == nullptr) return;
  arena_->FreeAll(&chain_);
  encoded_bytes_ = 0;
  last_doc_ = 0;
  doc_count_ = 0;
}

size_t PostingList::ApproxMemoryUsage() const {
  if (arena_ != nullptr) {
    // Chunk bytes this chain has reserved inside the (shared) arena.
    return sizeof(PostingList) + arena_->ChainCapacityBytes(chain_);
  }
  return sizeof(PostingList) + ::microprov::ApproxMemoryUsage(data_);
}

PostingList::Iterator::Iterator(const PostingList* list) {
  if (list->arena_ != nullptr) {
    arena_ = list->arena_;
    next_chunk_ = list->chain_.head;
    AdvanceChunk();
  } else {
    rest_ = std::string_view(list->data_);
  }
  valid_ = ParsePair();
}

PostingList::Iterator::Iterator(std::string_view encoded) : rest_(encoded) {
  valid_ = ParsePair();
}

void PostingList::Iterator::AdvanceChunk() {
  rest_ = {};
  while (next_chunk_ != SlabArena::kNullRef && rest_.empty()) {
    rest_ = std::string_view(
        reinterpret_cast<const char*>(arena_->Payload(next_chunk_)),
        arena_->used(next_chunk_));
    next_chunk_ = arena_->next(next_chunk_);
  }
}

bool PostingList::Iterator::ParsePair() {
  if (rest_.empty()) {
    if (arena_ == nullptr) return false;
    AdvanceChunk();
    if (rest_.empty()) return false;
  }
  uint32_t delta = 0, tf = 0;
  GetVarint32(&rest_, &delta);
  GetVarint32(&rest_, &tf);
  current_ = {current_.doc + delta, tf};
  return true;
}

void PostingList::Iterator::Next() { valid_ = ParsePair(); }

void PostingList::Iterator::SkipTo(DocId target) {
  while (valid_ && current_.doc < target) Next();
}

}  // namespace microprov
