#ifndef MICROPROV_INDEX_MEMORY_INDEX_H_
#define MICROPROV_INDEX_MEMORY_INDEX_H_

#include <string>
#include <string_view>
#include <vector>

#include "index/posting_list.h"
#include "text/vocabulary.h"

namespace microprov {

/// In-memory inverted index over tokenized documents: term -> compressed
/// posting list, plus the per-document statistics BM25 needs. This is the
/// "Lucene" role in the paper's stack (their query support is implemented
/// with Lucene); the query module builds message and bundle indexes on it.
class MemoryIndex {
 public:
  MemoryIndex() = default;
  /// Index whose posting lists live in `arena` (shared, size-classed
  /// chunks — see PostingList::BindArena) instead of per-term strings.
  /// `arena` must outlive the index and be used single-writer alongside
  /// it; the destructor returns every list's chunks to it.
  explicit MemoryIndex(SlabArena* arena) : arena_(arena) {}
  ~MemoryIndex();
  MemoryIndex(const MemoryIndex&) = delete;
  MemoryIndex& operator=(const MemoryIndex&) = delete;

  /// Adds a document; returns its DocId (dense, insertion order). Tokens
  /// are raw terms (already normalized); duplicates raise tf.
  DocId AddDocument(const std::vector<std::string>& tokens);

  uint32_t num_docs() const { return num_docs_; }
  double average_doc_length() const;
  uint32_t doc_length(DocId doc) const { return doc_lengths_[doc]; }

  /// Document frequency of `term` (0 if unseen).
  uint32_t DocFreq(std::string_view term) const;

  /// Posting iterator for `term`; Valid() is false for unseen terms.
  PostingList::Iterator Postings(std::string_view term) const;

  const Vocabulary& vocabulary() const { return vocab_; }

  /// Posting list by TermId (segment serialization). Requires id < size.
  const PostingList& list(TermId id) const { return lists_[id]; }

  size_t ApproxMemoryUsage() const;

 private:
  Vocabulary vocab_;
  SlabArena* arena_ = nullptr;  // null = per-list string storage
  std::vector<PostingList> lists_;  // indexed by TermId
  std::vector<uint32_t> doc_lengths_;
  uint64_t total_length_ = 0;
  uint32_t num_docs_ = 0;
  PostingList empty_;
};

}  // namespace microprov

#endif  // MICROPROV_INDEX_MEMORY_INDEX_H_
