#ifndef MICROPROV_INDEX_POSTING_LIST_H_
#define MICROPROV_INDEX_POSTING_LIST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace microprov {

/// Document id within an index (dense, assigned in insertion order).
using DocId = uint32_t;

/// One (document, term-frequency) pair.
struct Posting {
  DocId doc = 0;
  uint32_t tf = 0;

  bool operator==(const Posting& other) const = default;
};

/// Compressed posting list: doc ids delta-encoded as varints, term
/// frequencies as varints. Append-only; docs must be added in ascending
/// order (the in-memory index guarantees this because doc ids grow with
/// insertion).
class PostingList {
 public:
  PostingList() = default;

  /// Appends a posting. Requires doc > the last appended doc (or tf
  /// accumulation onto the same trailing doc).
  void Add(DocId doc, uint32_t tf);

  uint32_t doc_count() const { return doc_count_; }
  size_t encoded_size() const { return data_.size(); }
  /// Raw encoded bytes (for segment serialization).
  std::string_view encoded() const { return data_; }

  /// Decodes the full list (tests, merges).
  std::vector<Posting> Decode() const;

  /// Forward iterator over the compressed list.
  class Iterator {
   public:
    explicit Iterator(const PostingList* list);
    /// Iterates raw encoded posting bytes (used by on-disk segments).
    explicit Iterator(std::string_view encoded);

    bool Valid() const { return valid_; }
    void Next();
    Posting posting() const { return current_; }

    /// Advances to the first posting with doc >= target.
    void SkipTo(DocId target);

   private:
    std::string_view rest_;
    Posting current_;
    bool valid_ = false;
  };

  Iterator NewIterator() const { return Iterator(this); }

  size_t ApproxMemoryUsage() const;

 private:
  friend class Iterator;
  std::string data_;
  DocId last_doc_ = 0;
  uint32_t doc_count_ = 0;
};

}  // namespace microprov

#endif  // MICROPROV_INDEX_POSTING_LIST_H_
