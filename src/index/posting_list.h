#ifndef MICROPROV_INDEX_POSTING_LIST_H_
#define MICROPROV_INDEX_POSTING_LIST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/slab_arena.h"
#include "common/status.h"

namespace microprov {

/// Document id within an index (dense, assigned in insertion order).
using DocId = uint32_t;

/// One (document, term-frequency) pair.
struct Posting {
  DocId doc = 0;
  uint32_t tf = 0;

  bool operator==(const Posting& other) const = default;
};

/// Compressed posting list: doc ids delta-encoded as varints, term
/// frequencies as varints. Append-only; docs must be added in ascending
/// order (the in-memory index guarantees this because doc ids grow with
/// insertion).
///
/// Two storage modes. By default the encoded stream lives in a private
/// std::string (self-contained; also what on-disk segments decode from).
/// BindArena switches the list to a SlabArena byte chain before its
/// first Add: postings then live in size-classed chunks shared with
/// every other list in the index, so a million-term index performs zero
/// per-term heap allocations and its memory is governed by the arena's
/// block budget. Each encoded (delta, tf) pair is appended atomically —
/// it never straddles a chunk boundary — so iteration decodes each chunk
/// independently.
class PostingList {
 public:
  PostingList() = default;

  /// Stores this list's postings in `arena` (which must outlive the
  /// list's storage — see FreeStorage). Must be called before the first
  /// Add; lists that already hold data keep their string storage.
  void BindArena(SlabArena* arena) {
    if (doc_count_ == 0) arena_ = arena;
  }

  /// Appends a posting. Requires doc > the last appended doc (or tf
  /// accumulation onto the same trailing doc).
  void Add(DocId doc, uint32_t tf);

  uint32_t doc_count() const { return doc_count_; }
  size_t encoded_size() const {
    return arena_ != nullptr ? encoded_bytes_ : data_.size();
  }
  /// Raw encoded bytes. String mode only — arena-backed lists are not
  /// contiguous; use AppendEncodedTo.
  std::string_view encoded() const { return data_; }

  /// Appends the encoded stream to `out` (segment serialization). Works
  /// in both modes and produces identical bytes for identical Adds.
  void AppendEncodedTo(std::string* out) const;

  /// Decodes the full list (tests, merges).
  std::vector<Posting> Decode() const;
  /// Decodes into a caller-owned buffer (cleared first) so repeated
  /// query-path decodes reuse one allocation.
  void Decode(std::vector<Posting>* out) const;

  /// Arena mode: returns this list's chunks to the arena and resets the
  /// list. No-op in string mode.
  void FreeStorage();

  /// Forward iterator over the compressed list.
  class Iterator {
   public:
    explicit Iterator(const PostingList* list);
    /// Iterates raw encoded posting bytes (used by on-disk segments).
    explicit Iterator(std::string_view encoded);

    bool Valid() const { return valid_; }
    void Next();
    Posting posting() const { return current_; }

    /// Advances to the first posting with doc >= target.
    void SkipTo(DocId target);

   private:
    /// Refills rest_ from the next non-empty chunk (arena mode).
    void AdvanceChunk();
    /// Parses one (delta, tf) pair from rest_, crossing chunks as needed.
    bool ParsePair();

    std::string_view rest_;
    const SlabArena* arena_ = nullptr;
    SlabArena::Ref next_chunk_ = SlabArena::kNullRef;
    Posting current_;
    bool valid_ = false;
  };

  Iterator NewIterator() const { return Iterator(this); }

  size_t ApproxMemoryUsage() const;

 private:
  friend class Iterator;
  std::string data_;
  SlabArena* arena_ = nullptr;
  SlabArena::ByteChain chain_;
  uint32_t encoded_bytes_ = 0;
  DocId last_doc_ = 0;
  uint32_t doc_count_ = 0;
};

}  // namespace microprov

#endif  // MICROPROV_INDEX_POSTING_LIST_H_
