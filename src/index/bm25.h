#ifndef MICROPROV_INDEX_BM25_H_
#define MICROPROV_INDEX_BM25_H_

#include <cstdint>

namespace microprov {

/// Okapi BM25 parameters; defaults are the textbook values.
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// Robertson-Sparck-Jones IDF with the +1 floor Lucene uses so common
/// terms never score negative.
double Bm25Idf(uint32_t num_docs, uint32_t doc_freq);

/// Per-term, per-document BM25 contribution.
double Bm25Term(double idf, uint32_t tf, uint32_t doc_len,
                double avg_doc_len, const Bm25Params& params);

}  // namespace microprov

#endif  // MICROPROV_INDEX_BM25_H_
