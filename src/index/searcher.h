#ifndef MICROPROV_INDEX_SEARCHER_H_
#define MICROPROV_INDEX_SEARCHER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "index/bm25.h"
#include "index/memory_index.h"

namespace microprov {

/// One ranked hit.
struct SearchHit {
  DocId doc = 0;
  double score = 0.0;
};

/// Reusable buffers for the query path. A caller that keeps one scratch
/// across queries pays allocations only while the buffers grow to their
/// working size; steady-state searches touch no heap.
struct SearcherScratch {
  std::unordered_map<DocId, double> acc;
  std::vector<std::pair<DocId, double>> scores;
  std::vector<SearchHit> hits;
  std::vector<PostingList::Iterator> iters;
  std::vector<double> idfs;
};

/// Ranked retrieval over a MemoryIndex.
class Searcher {
 public:
  explicit Searcher(const MemoryIndex* index, Bm25Params params = {})
      : index_(index), params_(params) {}

  /// Disjunctive (OR) BM25 top-k. Terms absent from the index contribute
  /// nothing. Ties break toward smaller DocId for determinism.
  std::vector<SearchHit> TopK(const std::vector<std::string>& terms,
                              size_t k) const;

  /// Scratch-backed variant: the result lives in scratch->hits (valid
  /// until the next call with the same scratch).
  const std::vector<SearchHit>& TopK(const std::vector<std::string>& terms,
                                     size_t k,
                                     SearcherScratch* scratch) const;

  /// Conjunctive (AND) retrieval: docs containing every term, BM25-ranked.
  std::vector<SearchHit> TopKConjunctive(
      const std::vector<std::string>& terms, size_t k) const;

  /// Scratch-backed variant of TopKConjunctive.
  const std::vector<SearchHit>& TopKConjunctive(
      const std::vector<std::string>& terms, size_t k,
      SearcherScratch* scratch) const;

 private:
  /// Ranks scratch->scores into scratch->hits (top `k`, score desc, doc
  /// asc on ties).
  static void RankAccumulated(size_t k, SearcherScratch* scratch);

  const MemoryIndex* index_;
  Bm25Params params_;
};

}  // namespace microprov

#endif  // MICROPROV_INDEX_SEARCHER_H_
