#ifndef MICROPROV_INDEX_SEARCHER_H_
#define MICROPROV_INDEX_SEARCHER_H_

#include <string>
#include <vector>

#include "index/bm25.h"
#include "index/memory_index.h"

namespace microprov {

/// One ranked hit.
struct SearchHit {
  DocId doc = 0;
  double score = 0.0;
};

/// Ranked retrieval over a MemoryIndex.
class Searcher {
 public:
  explicit Searcher(const MemoryIndex* index, Bm25Params params = {})
      : index_(index), params_(params) {}

  /// Disjunctive (OR) BM25 top-k. Terms absent from the index contribute
  /// nothing. Ties break toward smaller DocId for determinism.
  std::vector<SearchHit> TopK(const std::vector<std::string>& terms,
                              size_t k) const;

  /// Conjunctive (AND) retrieval: docs containing every term, BM25-ranked.
  std::vector<SearchHit> TopKConjunctive(
      const std::vector<std::string>& terms, size_t k) const;

 private:
  std::vector<SearchHit> RankAccumulated(
      std::vector<std::pair<DocId, double>>&& scores, size_t k) const;

  const MemoryIndex* index_;
  Bm25Params params_;
};

}  // namespace microprov

#endif  // MICROPROV_INDEX_SEARCHER_H_
