#include "index/segment.h"

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/env.h"

namespace microprov {

namespace {
constexpr uint32_t kSegmentMagic = 0x4753454Du;  // "MSEG"
}  // namespace

Status WriteSegment(const MemoryIndex& index, const DocStore& docs,
                    const std::string& path) {
  if (index.num_docs() != docs.size()) {
    return Status::InvalidArgument(
        "index and doc store disagree on document count");
  }
  std::string body;
  PutFixed32(&body, kSegmentMagic);
  PutFixed32(&body, index.num_docs());

  // Term dictionary + postings blob.
  const Vocabulary& vocab = index.vocabulary();
  std::string dict;
  std::string blob;
  PutVarint32(&dict, static_cast<uint32_t>(vocab.size()));
  for (TermId id = 0; id < vocab.size(); ++id) {
    const PostingList& list = index.list(id);
    PutLengthPrefixed(&dict, vocab.TermOf(id));
    PutVarint32(&dict, list.doc_count());
    PutVarint64(&dict, blob.size());
    PutVarint32(&dict, static_cast<uint32_t>(list.encoded_size()));
    list.AppendEncodedTo(&blob);
  }
  PutLengthPrefixed(&body, dict);
  PutLengthPrefixed(&body, blob);

  // Doc lengths.
  uint64_t total_length = 0;
  std::string lengths;
  for (DocId d = 0; d < index.num_docs(); ++d) {
    PutVarint32(&lengths, index.doc_length(d));
    total_length += index.doc_length(d);
  }
  PutVarint64(&body, total_length);
  PutLengthPrefixed(&body, lengths);

  // Doc store.
  std::string store;
  for (DocId d = 0; d < docs.size(); ++d) {
    PutVarsint64(&store, docs.ExternalId(d));
    PutLengthPrefixed(&store, docs.Snippet(d));
  }
  PutLengthPrefixed(&body, store);

  // Trailing CRC over everything before it.
  PutFixed32(&body, crc32c::Mask(crc32c::Value(body)));
  return Env::Default()->WriteStringToFile(path, body);
}

StatusOr<std::unique_ptr<SegmentReader>> SegmentReader::Open(
    const std::string& path) {
  std::string contents;
  MICROPROV_RETURN_IF_ERROR(
      Env::Default()->ReadFileToString(path, &contents));
  if (contents.size() < 12) {
    return Status::Corruption("segment too small: " + path);
  }

  // Verify CRC.
  std::string_view tail(contents.data() + contents.size() - 4, 4);
  uint32_t stored = 0;
  GetFixed32(&tail, &stored);
  std::string_view covered(contents.data(), contents.size() - 4);
  if (crc32c::Unmask(stored) != crc32c::Value(covered)) {
    return Status::Corruption("segment checksum mismatch: " + path);
  }

  std::string_view input = covered;
  uint32_t magic = 0;
  uint32_t num_docs = 0;
  if (!GetFixed32(&input, &magic) || magic != kSegmentMagic) {
    return Status::Corruption("bad segment magic: " + path);
  }
  if (!GetFixed32(&input, &num_docs)) {
    return Status::Corruption("truncated segment header");
  }

  auto reader = std::unique_ptr<SegmentReader>(new SegmentReader());
  reader->num_docs_ = num_docs;

  std::string_view dict, blob;
  if (!GetLengthPrefixed(&input, &dict) ||
      !GetLengthPrefixed(&input, &blob)) {
    return Status::Corruption("truncated segment dictionary/blob");
  }
  reader->blob_.assign(blob);

  uint32_t num_terms = 0;
  if (!GetVarint32(&dict, &num_terms)) {
    return Status::Corruption("truncated term count");
  }
  reader->dict_.reserve(num_terms);
  for (uint32_t i = 0; i < num_terms; ++i) {
    std::string_view term;
    TermEntry entry;
    uint64_t offset = 0;
    if (!GetLengthPrefixed(&dict, &term) ||
        !GetVarint32(&dict, &entry.df) || !GetVarint64(&dict, &offset) ||
        !GetVarint32(&dict, &entry.length)) {
      return Status::Corruption("truncated term entry");
    }
    entry.offset = offset;
    if (entry.offset + entry.length > reader->blob_.size()) {
      return Status::Corruption("posting extent out of range");
    }
    reader->dict_.emplace(std::string(term), entry);
  }

  std::string_view lengths;
  if (!GetVarint64(&input, &reader->total_length_) ||
      !GetLengthPrefixed(&input, &lengths)) {
    return Status::Corruption("truncated doc lengths");
  }
  reader->doc_lengths_.reserve(num_docs);
  for (uint32_t i = 0; i < num_docs; ++i) {
    uint32_t len = 0;
    if (!GetVarint32(&lengths, &len)) {
      return Status::Corruption("truncated doc length entry");
    }
    reader->doc_lengths_.push_back(len);
  }

  std::string_view store;
  if (!GetLengthPrefixed(&input, &store)) {
    return Status::Corruption("truncated doc store");
  }
  reader->external_ids_.reserve(num_docs);
  reader->snippets_.reserve(num_docs);
  for (uint32_t i = 0; i < num_docs; ++i) {
    int64_t ext = 0;
    std::string_view snippet;
    if (!GetVarsint64(&store, &ext) ||
        !GetLengthPrefixed(&store, &snippet)) {
      return Status::Corruption("truncated doc store entry");
    }
    reader->external_ids_.push_back(ext);
    reader->snippets_.emplace_back(snippet);
  }
  return reader;
}

double SegmentReader::average_doc_length() const {
  return num_docs_ == 0
             ? 0.0
             : static_cast<double>(total_length_) / num_docs_;
}

uint32_t SegmentReader::DocFreq(std::string_view term) const {
  auto it = dict_.find(std::string(term));
  return it == dict_.end() ? 0 : it->second.df;
}

PostingList::Iterator SegmentReader::Postings(
    std::string_view term) const {
  auto it = dict_.find(std::string(term));
  if (it == dict_.end()) return PostingList::Iterator(std::string_view());
  return PostingList::Iterator(std::string_view(
      blob_.data() + it->second.offset, it->second.length));
}

}  // namespace microprov
