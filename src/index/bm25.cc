#include "index/bm25.h"

#include <cmath>

namespace microprov {

double Bm25Idf(uint32_t num_docs, uint32_t doc_freq) {
  if (doc_freq == 0 || num_docs == 0) return 0.0;
  double n = static_cast<double>(num_docs);
  double df = static_cast<double>(doc_freq);
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

double Bm25Term(double idf, uint32_t tf, uint32_t doc_len,
                double avg_doc_len, const Bm25Params& params) {
  if (tf == 0) return 0.0;
  double tf_d = static_cast<double>(tf);
  double norm = avg_doc_len <= 0.0
                    ? 1.0
                    : params.k1 * (1.0 - params.b +
                                   params.b * doc_len / avg_doc_len);
  return idf * (tf_d * (params.k1 + 1.0)) / (tf_d + norm);
}

}  // namespace microprov
