#include "index/searcher.h"

#include <algorithm>

namespace microprov {

void Searcher::RankAccumulated(size_t k, SearcherScratch* scratch) {
  std::vector<SearchHit>& hits = scratch->hits;
  hits.clear();
  hits.reserve(scratch->scores.size());
  for (const auto& [doc, score] : scratch->scores) {
    hits.push_back({doc, score});
  }
  size_t take = std::min(k, hits.size());
  std::partial_sort(hits.begin(), hits.begin() + take, hits.end(),
                    [](const SearchHit& a, const SearchHit& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.doc < b.doc;
                    });
  hits.resize(take);
}

std::vector<SearchHit> Searcher::TopK(
    const std::vector<std::string>& terms, size_t k) const {
  SearcherScratch scratch;
  return TopK(terms, k, &scratch);
}

const std::vector<SearchHit>& Searcher::TopK(
    const std::vector<std::string>& terms, size_t k,
    SearcherScratch* scratch) const {
  std::unordered_map<DocId, double>& acc = scratch->acc;
  acc.clear();
  const uint32_t n = index_->num_docs();
  const double avg = index_->average_doc_length();
  for (const std::string& term : terms) {
    uint32_t df = index_->DocFreq(term);
    if (df == 0) continue;
    double idf = Bm25Idf(n, df);
    for (auto it = index_->Postings(term); it.Valid(); it.Next()) {
      Posting p = it.posting();
      acc[p.doc] += Bm25Term(idf, p.tf, index_->doc_length(p.doc), avg,
                             params_);
    }
  }
  scratch->scores.assign(acc.begin(), acc.end());
  RankAccumulated(k, scratch);
  return scratch->hits;
}

std::vector<SearchHit> Searcher::TopKConjunctive(
    const std::vector<std::string>& terms, size_t k) const {
  SearcherScratch scratch;
  return TopKConjunctive(terms, k, &scratch);
}

const std::vector<SearchHit>& Searcher::TopKConjunctive(
    const std::vector<std::string>& terms, size_t k,
    SearcherScratch* scratch) const {
  scratch->scores.clear();
  scratch->hits.clear();
  if (terms.empty()) return scratch->hits;
  // Gather iterators; an unseen term means an empty result.
  std::vector<PostingList::Iterator>& iters = scratch->iters;
  std::vector<double>& idfs = scratch->idfs;
  iters.clear();
  idfs.clear();
  const uint32_t n = index_->num_docs();
  const double avg = index_->average_doc_length();
  for (const std::string& term : terms) {
    uint32_t df = index_->DocFreq(term);
    if (df == 0) return scratch->hits;
    iters.push_back(index_->Postings(term));
    idfs.push_back(Bm25Idf(n, df));
  }

  std::vector<std::pair<DocId, double>>& scores = scratch->scores;
  // Classic leapfrog intersection driven by the first iterator.
  while (iters[0].Valid()) {
    DocId candidate = iters[0].posting().doc;
    bool all_match = true;
    for (size_t i = 1; i < iters.size(); ++i) {
      iters[i].SkipTo(candidate);
      if (!iters[i].Valid()) {
        RankAccumulated(k, scratch);
        return scratch->hits;
      }
      if (iters[i].posting().doc != candidate) {
        all_match = false;
        // Re-anchor on the larger doc.
        iters[0].SkipTo(iters[i].posting().doc);
        break;
      }
    }
    if (all_match) {
      double score = 0;
      for (size_t i = 0; i < iters.size(); ++i) {
        score += Bm25Term(idfs[i], iters[i].posting().tf,
                          index_->doc_length(candidate), avg, params_);
      }
      scores.emplace_back(candidate, score);
      iters[0].Next();
    }
  }
  RankAccumulated(k, scratch);
  return scratch->hits;
}

}  // namespace microprov
