#ifndef MICROPROV_INDEX_DOC_STORE_H_
#define MICROPROV_INDEX_DOC_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/posting_list.h"

namespace microprov {

/// Maps dense DocIds back to application objects: the external id (a
/// MessageId or BundleId) plus an optional stored snippet for display.
class DocStore {
 public:
  DocId Add(int64_t external_id, std::string snippet = {}) {
    external_ids_.push_back(external_id);
    snippets_.push_back(std::move(snippet));
    return static_cast<DocId>(external_ids_.size() - 1);
  }

  int64_t ExternalId(DocId doc) const { return external_ids_[doc]; }
  const std::string& Snippet(DocId doc) const { return snippets_[doc]; }
  size_t size() const { return external_ids_.size(); }

  size_t ApproxMemoryUsage() const;

 private:
  std::vector<int64_t> external_ids_;
  std::vector<std::string> snippets_;
};

}  // namespace microprov

#endif  // MICROPROV_INDEX_DOC_STORE_H_
