#include "index/memory_index.h"

#include <algorithm>
#include <unordered_map>

#include "common/memory_usage.h"

namespace microprov {

MemoryIndex::~MemoryIndex() {
  if (arena_ == nullptr) return;
  for (PostingList& list : lists_) list.FreeStorage();
}

DocId MemoryIndex::AddDocument(const std::vector<std::string>& tokens) {
  const DocId doc = num_docs_++;
  // Coalesce term frequencies first so each posting list sees one Add.
  std::unordered_map<TermId, uint32_t> tfs;
  for (const std::string& tok : tokens) {
    ++tfs[vocab_.GetOrAdd(tok)];
  }
  if (vocab_.size() > lists_.size()) {
    const size_t old_size = lists_.size();
    lists_.resize(vocab_.size());
    if (arena_ != nullptr) {
      for (size_t i = old_size; i < lists_.size(); ++i) {
        lists_[i].BindArena(arena_);
      }
    }
  }
  // Deterministic order (TermId ascending) keeps encodes reproducible.
  std::vector<std::pair<TermId, uint32_t>> sorted(tfs.begin(), tfs.end());
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [term, tf] : sorted) {
    lists_[term].Add(doc, tf);
  }
  doc_lengths_.push_back(static_cast<uint32_t>(tokens.size()));
  total_length_ += tokens.size();
  return doc;
}

double MemoryIndex::average_doc_length() const {
  return num_docs_ == 0
             ? 0.0
             : static_cast<double>(total_length_) / num_docs_;
}

uint32_t MemoryIndex::DocFreq(std::string_view term) const {
  TermId id = vocab_.Find(term);
  if (id == kInvalidTermId) return 0;
  return lists_[id].doc_count();
}

PostingList::Iterator MemoryIndex::Postings(std::string_view term) const {
  TermId id = vocab_.Find(term);
  if (id == kInvalidTermId) return empty_.NewIterator();
  return lists_[id].NewIterator();
}

size_t MemoryIndex::ApproxMemoryUsage() const {
  size_t total = sizeof(MemoryIndex);
  total += vocab_.ApproxMemoryUsage();
  total += ApproxVectorUsage(lists_);
  if (arena_ != nullptr) {
    // Arena-backed lists: the blocks are the resident footprint (the
    // arena is dedicated to this index's postings).
    total += arena_->stats().allocated_bytes;
  } else {
    for (const PostingList& list : lists_) {
      total += list.ApproxMemoryUsage() - sizeof(PostingList);
    }
  }
  total += ApproxVectorUsage(doc_lengths_);
  return total;
}

}  // namespace microprov
