#include "index/doc_store.h"

#include "common/memory_usage.h"

namespace microprov {

size_t DocStore::ApproxMemoryUsage() const {
  return sizeof(DocStore) + ApproxVectorUsage(external_ids_) +
         ::microprov::ApproxMemoryUsage(snippets_);
}

}  // namespace microprov
