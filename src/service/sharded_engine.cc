#include "service/sharded_engine.h"

#include "common/hash.h"
#include "common/string_util.h"

namespace microprov {

uint32_t RouteShard(const Message& msg, size_t num_shards) {
  if (num_shards <= 1) return 0;
  std::string_view key;
  if (msg.is_retweet && !msg.retweet_of_user.empty()) {
    key = msg.retweet_of_user;
  } else if (!msg.urls.empty()) {
    key = msg.urls.front();
  } else if (!msg.hashtags.empty()) {
    key = msg.hashtags.front();
  } else {
    key = msg.user;
  }
  return static_cast<uint32_t>(Fnv1a64(key) % num_shards);
}

ShardedEngine::ShardedEngine(const ShardedEngineOptions& options,
                             std::vector<BundleArchive*> archives)
    : options_(options) {
  const size_t n = options_.num_shards == 0 ? 1 : options_.num_shards;
  obs::MetricsRegistry* registry = options_.engine.metrics;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    BundleArchive* archive =
        i < archives.size() ? archives[i] : nullptr;
    EngineOptions engine_options = options_.engine;
    engine_options.shard_index = static_cast<uint32_t>(i);
    shards_.push_back(std::make_unique<Shard>(
        engine_options, archive, options_.queue_capacity));
    shards_.back()->load_tracker = std::make_unique<obs::ShardLoadTracker>(
        static_cast<uint32_t>(i), options_.queue_capacity,
        options_.health);
    if (registry != nullptr) {
      const std::string shard_label =
          StringPrintf("shard=\"%zu\"", i);
      shards_.back()->ingested_counter = registry->GetCounter(
          "microprov_shard_ingested_total", shard_label,
          "Messages ingested by each shard worker");
      shards_.back()->depth_gauge = registry->GetGauge(
          "microprov_shard_queue_depth", shard_label,
          "Messages waiting in each shard's input queue "
          "(refreshed once per worker batch)");
    }
  }
  if (registry != nullptr) {
    backpressure_counter_ = registry->GetCounter(
        "microprov_shard_backpressure_stalls_total", "",
        "Submit calls that blocked on a full shard queue");
    batches_counter_ =
        registry->GetCounter("microprov_shard_batches_total", "",
                             "Worker dequeue batches across all shards");
    batch_size_hist_ =
        registry->GetHistogram("microprov_shard_batch_size", "",
                               "Messages per worker dequeue batch");
  }
  if (options_.query_threads > 0) {
    query_pool_ = std::make_unique<TaskPool>(options_.query_threads);
  }
  if (!options_.defer_workers) Start();
}

void ShardedEngine::Start() {
  if (started_) return;
  started_ = true;
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(s); });
  }
}

void ShardedEngine::SeedIngested(size_t i, uint64_t n) {
  if (n == 0) return;
  Shard& shard = *shards_[i];
  shard.enqueued.Add(n);
  shard.ingested.Add(n);
  if (shard.ingested_counter != nullptr) {
    shard.ingested_counter->Increment(n);
  }
}

ShardedEngine::~ShardedEngine() {
  // Stop workers without archiving; callers wanting a clean shutdown
  // call Drain() first.
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

Status ShardedEngine::Submit(const Message& msg, uint32_t* shard_out) {
  if (drained_) {
    return Status::FailedPrecondition("ShardedEngine already drained");
  }
  if (!started_) {
    return Status::FailedPrecondition("ShardedEngine not started");
  }
  const uint32_t idx = RouteShard(msg, shards_.size());
  Shard& shard = *shards_[idx];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.error.ok()) return shard.error;
    ++shard.in_flight;
    // in_flight (queued + in the current batch) doubles as the queue
    // depth signal — no extra queue-lock acquisition on the hot path.
    shard.load_tracker->NoteQueueDepth(
        static_cast<size_t>(shard.in_flight));
  }
  bool blocked = false;
  int64_t blocked_nanos = 0;
  if (!shard.queue.Push(msg, &blocked, &blocked_nanos)) {
    std::lock_guard<std::mutex> lock(shard.mu);
    --shard.in_flight;
    return Status::FailedPrecondition("shard queue closed");
  }
  if (blocked) {
    if (backpressure_counter_ != nullptr) {
      backpressure_counter_->Increment();
    }
    shard.load_tracker->NoteBackpressureStall(blocked_nanos);
  }
  shard.enqueued.Add();
  if (shard_out != nullptr) *shard_out = idx;
  return Status::OK();
}

Status ShardedEngine::Flush() {
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->all_ingested.wait(lock, [&] { return shard->in_flight == 0; });
    if (!shard->error.ok()) return shard->error;
  }
  // The barrier makes shard engines readable from this thread; use the
  // checkpoint to republish the O(pool)-cost memory gauges.
  for (auto& shard : shards_) {
    shard->engine.RefreshMemoryMetrics();
    if (shard->depth_gauge != nullptr) {
      shard->depth_gauge->Set(static_cast<int64_t>(shard->queue.size()));
    }
  }
  return Status::OK();
}

Status ShardedEngine::Drain() {
  if (drained_) return Status::OK();
  MICROPROV_RETURN_IF_ERROR(Flush());
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  drained_ = true;
  // Workers are gone; engine access from this thread is now exclusive.
  for (auto& shard : shards_) {
    if (shard->engine.archive() != nullptr) {
      MICROPROV_RETURN_IF_ERROR(shard->engine.Drain());
    }
  }
  return Status::OK();
}

void ShardedEngine::WorkerLoop(Shard* shard) {
  std::vector<Message> batch;
  batch.reserve(options_.max_batch);
  while (true) {
    batch.clear();
    const size_t n =
        shard->queue.PopBatch(&batch, options_.max_batch);
    if (n == 0) break;  // closed and empty
    for (const Message& msg : batch) {
      // Per-shard stream time: the newest date this shard has seen.
      shard->clock.Advance(msg.date);
      StatusOr<IngestResult> result = shard->engine.Ingest(msg);
      if (result.ok()) {
        shard->ingested.Add();
        if (shard->ingested_counter != nullptr) {
          shard->ingested_counter->Increment();
        }
      } else {
        std::lock_guard<std::mutex> lock(shard->mu);
        if (shard->error.ok()) shard->error = result.status();
      }
    }
    shard->batches.Add();
    shard->load_tracker->NoteIngested(n);
    if (batches_counter_ != nullptr) batches_counter_->Increment();
    if (batch_size_hist_ != nullptr) batch_size_hist_->Observe(n);
    if (shard->depth_gauge != nullptr) {
      shard->depth_gauge->Set(static_cast<int64_t>(shard->queue.size()));
    }
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->in_flight -= n;
      if (shard->in_flight == 0) shard->all_ingested.notify_all();
    }
  }
}

ShardStatsSnapshot ShardedEngine::shard_stats(size_t i) const {
  const Shard& shard = *shards_[i];
  ShardStatsSnapshot snap;
  snap.enqueued = shard.enqueued.value();
  snap.ingested = shard.ingested.value();
  snap.batches = shard.batches.value();
  snap.blocked_pushes = shard.queue.blocked_pushes();
  snap.queue_depth = shard.queue.size();
  return snap;
}

size_t ShardedEngine::shard_in_flight(size_t i) const {
  Shard& shard = *shards_[i];
  std::lock_guard<std::mutex> lock(shard.mu);
  return static_cast<size_t>(shard.in_flight);
}

uint64_t ShardedEngine::messages_ingested() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->ingested.value();
  return total;
}

size_t ShardedEngine::TotalPoolSize() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->engine.pool().size();
  return total;
}

size_t ShardedEngine::ApproxMemoryUsage() const {
  return MemoryUsage().total();
}

MemoryBreakdown ShardedEngine::MemoryUsage() const {
  MemoryBreakdown total;
  for (const auto& shard : shards_) {
    total += shard->engine.MemoryUsage();
  }
  return total;
}

}  // namespace microprov
