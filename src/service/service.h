#ifndef MICROPROV_SERVICE_SERVICE_H_
#define MICROPROV_SERVICE_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "query/query_processor.h"
#include "service/sharded_engine.h"
#include "storage/bundle_store.h"

namespace microprov {

/// Configuration for microprov::Service.
struct ServiceOptions {
  /// Ingestion partitions (see ShardedEngineOptions).
  size_t num_shards = 4;
  size_t queue_capacity = 1024;
  size_t max_batch = 64;
  /// Engine configuration for the deployment as a whole: the pool limit
  /// is the *total* live-bundle budget. Open() hands each shard a 1/N
  /// slice (EngineOptions::ShardSlice), so memory and per-message match
  /// work stay what you configured regardless of num_shards.
  EngineOptions engine;
  /// Eq. 7 ranking weights used by Search.
  QueryWeights weights;
  /// When non-empty, each shard gets an on-disk BundleStore under
  /// `<archive_dir>/shard-<i>`; bundles leaving memory (refinement,
  /// Drain) land there and stay searchable.
  std::string archive_dir;
};

/// Aggregate service statistics.
struct ServiceStats {
  uint64_t messages_ingested = 0;
  size_t live_bundles = 0;
  uint64_t archived_bundles = 0;
  size_t memory_bytes = 0;
  std::vector<ShardStatsSnapshot> shards;
};

/// The one public entry point to microprov: owns the clock, the
/// sharded ingestion pipeline, the per-shard archives, and the query
/// path, so callers no longer wire ProvenanceEngine +
/// BundleQueryProcessor + BundleStore by hand.
///
///   auto service_or = Service::Open({.num_shards = 4});
///   service->Ingest(msg);                                // non-blocking*
///   service->Search({.text = "#redsox", .k = 10});       // quiesces first
///   service->Drain();                                    // end-of-stream
///
/// (*) Ingest enqueues onto the message's shard and returns; it blocks
/// only when that shard's queue is full (backpressure). The returned
/// IngestResult therefore reports the routing decision (`shard`), not
/// the bundle placement, which the shard worker resolves asynchronously
/// — callers needing per-message placement use ProvenanceEngine
/// directly.
///
/// Thread contract: Service calls are serialized internally; any thread
/// may call them, one at a time. Search flushes the ingest queues
/// before reading shard state, so results always reflect every message
/// already ingested.
class Service {
 public:
  static StatusOr<std::unique_ptr<Service>> Open(
      const ServiceOptions& options);

  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Routes the message to its shard and enqueues it, blocking on a full
  /// queue. Fails with FailedPrecondition after Drain().
  StatusOr<IngestResult> Ingest(const Message& msg);

  /// Cross-shard top-k bundle retrieval. A zero `query.now` defaults to
  /// the service clock (latest ingested message date).
  StatusOr<std::vector<BundleSearchResult>> Search(const BundleQuery& query);

  /// Barrier: returns once every accepted message is ingested.
  Status Flush();

  /// End-of-stream: flushes, stops shard workers, and (with an archive
  /// configured) moves every live bundle to disk. Search keeps working
  /// afterwards; Ingest does not. Idempotent.
  Status Drain();

  /// The service clock: date of the newest message accepted by Ingest.
  Timestamp Now() const { return clock_.value(); }

  size_t num_shards() const { return sharded_->num_shards(); }

  /// Read-only view of the pipeline (tests, benches). Only safe to
  /// inspect shard engines after Flush()/Drain().
  const ShardedEngine& sharded() const { return *sharded_; }

  ServiceStats Stats() const;

 private:
  explicit Service(const ServiceOptions& options);

  ServiceOptions options_;
  /// Serializes Ingest/Search/Flush/Drain.
  std::mutex mu_;
  AtomicWatermark clock_;
  std::vector<std::unique_ptr<BundleStore>> stores_;
  std::unique_ptr<ShardedEngine> sharded_;
  bool drained_ = false;
};

}  // namespace microprov

#endif  // MICROPROV_SERVICE_SERVICE_H_
