#ifndef MICROPROV_SERVICE_SERVICE_H_
#define MICROPROV_SERVICE_SERVICE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/memory_usage.h"
#include "common/status.h"
#include "common/statusor.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "obs/shard_health.h"
#include "obs/span.h"
#include "obs/stats_reporter.h"
#include "obs/trace.h"
#include "query/query_processor.h"
#include "recovery/checkpoint.h"
#include "service/sharded_engine.h"
#include "storage/bundle_store.h"

namespace microprov {

/// Configuration for microprov::Service.
struct ServiceOptions {
  /// Ingestion partitions (see ShardedEngineOptions).
  size_t num_shards = 4;
  size_t queue_capacity = 1024;
  size_t max_batch = 64;
  /// Engine configuration for the deployment as a whole: the pool limit
  /// is the *total* live-bundle budget. Open() hands each shard a 1/N
  /// slice (EngineOptions::ShardSlice), so memory and per-message match
  /// work stay what you configured regardless of num_shards.
  EngineOptions engine;
  /// Eq. 7 ranking weights used by Search.
  QueryWeights weights;
  /// Worker threads for parallel per-shard query fan-out (0 = search
  /// shards serially on the calling thread). Capped by usefulness at
  /// num_shards - 1: the caller participates in the fan-out.
  size_t query_threads = 0;
  /// When non-empty, each shard gets an on-disk BundleStore under
  /// `<archive_dir>/shard-<i>`; bundles leaving memory (refinement,
  /// Drain) land there and stay searchable.
  std::string archive_dir;

  /// Opt-in ingest tracing: keep the last `trace_capacity` per-message
  /// match/placement decisions (Eq. 1 candidate scores) in a ring
  /// buffer, dumpable via TraceJsonl(). 0 disables tracing entirely —
  /// the ingest path then takes no per-message trace cost.
  size_t trace_capacity = 0;
  /// Trace 1 in N ingested messages (1 = every message, the historical
  /// behavior). Sampled-out messages skip candidate collection too, so
  /// tracing can stay enabled under production ingest rates.
  size_t trace_sample_every = 1;

  /// Opt-in query tracing: keep the last `query_trace_capacity`
  /// span-annotated QueryTraceEvents (term ids, per-shard candidate
  /// counts, per-stage nanoseconds), sampled 1 in
  /// `query_trace_sample_every`. Dump via QueryTraceJsonl() or GET
  /// /debug/traces.
  size_t query_trace_capacity = 0;
  size_t query_trace_sample_every = 1;
  /// Slow-query log: queries with end-to-end latency over this
  /// threshold are ALWAYS captured with their full span tree (even
  /// when sampled out), into a separate ring of `slow_query_capacity`.
  /// 0 disables the slow log.
  uint64_t slow_query_nanos = 0;
  size_t slow_query_capacity = 64;

  /// Thresholds behind the per-shard ok/degraded/stalled verdicts.
  obs::ShardHealthOptions health;

  /// Embedded HTTP exposition server: -1 disables it (default), 0
  /// binds an ephemeral port (see Service::http_port()), otherwise the
  /// given port. Serves GET /metrics, /healthz, /statusz,
  /// /debug/traces, /debug/slow.
  int http_port = -1;
  std::string http_bind_address = "127.0.0.1";

  /// When > 0, a background StatsReporter thread invokes
  /// `stats_callback` every `stats_interval_ms` milliseconds with the
  /// current Prometheus text exposition. Requires a callback.
  uint64_t stats_interval_ms = 0;
  std::function<void(const std::string& prometheus_text)> stats_callback;

  /// Crash recovery: set `durability.dir` to make the service
  /// recoverable. Open() then resolves the newest valid checkpoint
  /// chain (base snapshot + incremental deltas) from that directory,
  /// replays the per-shard WAL tail through the (deterministic) shard
  /// engines, and resumes logging. Ingest hands each message to the
  /// group-commit flusher only AFTER its shard accepted it — so the
  /// WAL can never resurrect a message the pipeline rejected — and a
  /// checkpoint runs every `durability.checkpoint_every_messages`
  /// accepted messages (plus on Drain, always a full base). Durability
  /// is asynchronous: Flush() doubles as the durability barrier,
  /// returning once every accepted message is both ingested and on
  /// disk per the WAL flush policy. Keep this directory distinct from
  /// `archive_dir`; both participate in recovery (the checkpoint
  /// references bundles the stores already hold).
  recovery::DurabilityOptions durability;
};

/// Aggregate service statistics. Safe to read at any time, including
/// while shard workers run: every field is backed by atomics or
/// mutex-guarded queue state, never by direct engine reads.
/// `memory_bytes` is refreshed at refinement/Flush/Drain checkpoints
/// (computing it is O(pool)), so it may trail the live value.
struct ServiceStats {
  uint64_t messages_ingested = 0;
  size_t live_bundles = 0;
  uint64_t archived_bundles = 0;
  size_t memory_bytes = 0;
  /// Per-component breakdown of `memory_bytes`, summed over shards
  /// (same refresh cadence; text_index_bytes stays 0 — the service has
  /// no flat text index). `memory.arena_bytes` is what
  /// EngineOptions::memory.index_arena_bytes bounds.
  MemoryBreakdown memory;
  /// Messages currently waiting in shard queues (sum over shards).
  size_t queue_depth = 0;
  /// Ingest calls that blocked on a full shard queue (backpressure).
  uint64_t backpressure_stalls = 0;
  // Durability progress (all 0 when durability is disabled).
  uint64_t wal_appended_messages = 0;
  uint64_t wal_appended_bytes = 0;
  uint64_t checkpoints_installed = 0;
  /// Messages recovered from the WAL tail when this service opened.
  uint64_t replayed_messages = 0;
  std::vector<ShardStatsSnapshot> shards;
  /// Per-shard load + health verdicts (EWMA rates, queue high-water
  /// marks, WAL flusher lag). Evaluated fresh on every Stats() call.
  std::vector<obs::ShardHealthSnapshot> shard_health;
  /// Queries served (0 until query tracing is enabled).
  uint64_t queries_traced = 0;
  uint64_t slow_queries = 0;
};

/// The one public entry point to microprov: owns the clock, the
/// sharded ingestion pipeline, the per-shard archives, and the query
/// path, so callers no longer wire ProvenanceEngine +
/// BundleQueryProcessor + BundleStore by hand.
///
///   auto service_or = Service::Open({.num_shards = 4});
///   service->Ingest(msg);                                // non-blocking*
///   service->Search({.text = "#redsox", .k = 10});       // quiesces first
///   service->Drain();                                    // end-of-stream
///
/// (*) Ingest enqueues onto the message's shard and returns; it blocks
/// only when that shard's queue is full (backpressure). The returned
/// IngestResult therefore reports the routing decision (`shard`), not
/// the bundle placement, which the shard worker resolves asynchronously
/// — callers needing per-message placement use ProvenanceEngine
/// directly.
///
/// Thread contract: Service calls are serialized internally; any thread
/// may call them, one at a time. Search flushes the ingest queues
/// before reading shard state, so results always reflect every message
/// already ingested.
class Service {
 public:
  static StatusOr<std::unique_ptr<Service>> Open(
      const ServiceOptions& options);

  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Routes the message to its shard and enqueues it, blocking on a full
  /// queue. Fails with FailedPrecondition after Drain().
  StatusOr<IngestResult> Ingest(const Message& msg);

  /// Cross-shard top-k bundle retrieval. A zero `query.now` defaults to
  /// the service clock (latest ingested message date).
  StatusOr<std::vector<BundleSearchResult>> Search(const BundleQuery& query);

  /// Barrier: returns once every accepted message is ingested.
  Status Flush();

  /// Durably checkpoints the full service state: quiesces ingest (flush
  /// barrier), syncs the bundle stores, serializes every shard's engine
  /// state, installs the snapshot atomically, and truncates the WAL
  /// epochs it supersedes. Requires durability to be configured.
  Status Checkpoint();

  /// End-of-stream: flushes, stops shard workers, and (with an archive
  /// configured) moves every live bundle to disk. Search keeps working
  /// afterwards; Ingest does not. Idempotent.
  Status Drain();

  /// The service clock: date of the newest message accepted by Ingest.
  Timestamp Now() const { return clock_.value(); }

  size_t num_shards() const { return sharded_->num_shards(); }

  /// Read-only view of the pipeline (tests, benches). Only safe to
  /// inspect shard engines after Flush()/Drain().
  const ShardedEngine& sharded() const { return *sharded_; }

  ServiceStats Stats() const;

  /// Every metric the deployment registered, in Prometheus text
  /// exposition format (one scrape). Thread-safe at any time.
  std::string MetricsText() const { return registry_->PrometheusText(); }

  /// The same snapshot as a JSON document.
  std::string MetricsJson() const { return registry_->Json(); }

  /// The registry itself (read access for embedders exporting through
  /// their own telemetry pipeline).
  obs::MetricsRegistry* metrics() const { return registry_.get(); }

  /// The ingest trace ring, or nullptr when `trace_capacity` was 0.
  const obs::TraceSink* trace() const { return trace_.get(); }

  /// The durability layer, or nullptr when `durability.dir` was empty.
  /// Safe to inspect after Open returns and between service calls
  /// (recovery/replay statistics, checkpoint sequence).
  const recovery::DurabilityManager* durability() const {
    return durability_.get();
  }

  /// JSONL dump of the buffered ingest trace (empty string when tracing
  /// is disabled). Thread-safe at any time.
  std::string TraceJsonl() const {
    return trace_ != nullptr ? trace_->ToJsonl() : std::string();
  }

  /// The query trace ring, or nullptr when both query_trace_capacity
  /// and slow_query_nanos were 0.
  const obs::QueryTraceSink* query_trace() const {
    return query_trace_.get();
  }

  /// JSONL dumps of the sampled query traces / the slow-query log
  /// (empty when query tracing is disabled). Thread-safe at any time.
  std::string QueryTraceJsonl() const {
    return query_trace_ != nullptr ? query_trace_->ToJsonl()
                                   : std::string();
  }
  std::string SlowQueryJsonl() const {
    return query_trace_ != nullptr ? query_trace_->SlowJsonl()
                                   : std::string();
  }

  /// Evaluates every shard's load tracker against the current queue /
  /// WAL / arena signals, refreshes the health gauges, and returns the
  /// verdicts. Thread-safe at any time (reads only atomics and
  /// mutex-guarded queue state, like Stats()).
  std::vector<obs::ShardHealthSnapshot> Health() const;

  /// The bound exposition port (ephemeral ports resolved), or 0 when
  /// the HTTP server is disabled.
  uint16_t http_port() const {
    return exporter_ != nullptr ? exporter_->port() : 0;
  }

  /// Routes one exposition request ("/metrics", "/healthz", ...). The
  /// HTTP server calls this; tests can call it directly without a
  /// socket.
  obs::HttpResponse HandleHttp(std::string_view path,
                               std::string_view query) const;

 private:
  explicit Service(const ServiceOptions& options);

  /// Checkpoint import + WAL replay into the (not yet started) shard
  /// engines; called from Open with exclusive ownership. Replays the
  /// durable prefix (largest contiguous acceptance sequence), dedupes
  /// records across crash incarnations, and flags the tail dirty when
  /// it held torn bytes, orphans (records past the contiguous
  /// watermark), or duplicates — Open then installs a fresh base
  /// checkpoint before re-opening the WAL, which epoch-bumps past the
  /// damaged segments so they are never replayed again.
  Status Recover();
  /// Checkpoint body; caller holds mu_ (or has exclusive ownership
  /// during Open). `force_base` writes a full snapshot even when the
  /// incremental-checkpoint policy would pick a delta.
  Status CheckpointLocked(bool force_base = false);

  /// Per-shard health inputs + gauge refresh; shared by Health() and
  /// the /statusz JSON builder.
  obs::ShardHealthSnapshot EvaluateShard(size_t i) const;
  std::string StatusJson() const;

  ServiceOptions options_;
  /// Serializes Ingest/Search/Flush/Drain.
  std::mutex mu_;
  AtomicWatermark clock_;
  /// Owns every metric; declared before (destroyed after) all the
  /// components holding instrument pointers into it.
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::TraceSink> trace_;
  std::unique_ptr<obs::QueryTraceSink> query_trace_;
  std::vector<std::unique_ptr<BundleStore>> stores_;
  std::unique_ptr<recovery::DurabilityManager> durability_;
  std::unique_ptr<ShardedEngine> sharded_;
  /// Messages accepted by Ingest over the service's whole lifetime,
  /// including recovered ones (guarded by mu_; checkpointed).
  uint64_t accepted_ = 0;
  uint64_t accepted_since_checkpoint_ = 0;
  /// Recover() found a dirty WAL tail (torn bytes, orphaned or
  /// duplicate sequences); Open must install a base checkpoint before
  /// StartWal so the damaged epochs are retired.
  bool recovered_tail_dirty_ = false;
  /// A delta install failed after ExportDelta consumed the dirty sets;
  /// the next checkpoint must be a full base or the chain would have a
  /// hole.
  bool checkpoint_force_base_ = false;
  /// Gauge handles for TSan-safe Stats() aggregation (per shard).
  std::vector<obs::Gauge*> pool_gauges_;
  std::vector<obs::Gauge*> memory_gauges_;
  std::vector<obs::Gauge*> store_gauges_;
  /// Per-component memory gauges backing ServiceStats::memory, indexed
  /// [shard] for each MemoryBreakdown field the engine publishes.
  std::vector<obs::Gauge*> mem_pool_gauges_;
  std::vector<obs::Gauge*> mem_index_gauges_;
  std::vector<obs::Gauge*> mem_arena_gauges_;
  std::vector<obs::Gauge*> mem_dict_gauges_;
  /// Durability counters cached for the same reason (null when
  /// durability is disabled).
  obs::Counter* wal_appends_counter_ = nullptr;
  obs::Counter* wal_bytes_counter_ = nullptr;
  obs::Counter* checkpoints_counter_ = nullptr;
  obs::Counter* replayed_counter_ = nullptr;
  /// Per-shard health gauges refreshed by Health() (0=ok, 1=degraded,
  /// 2=stalled) plus the load stats behind them.
  std::vector<obs::Gauge*> health_gauges_;
  std::vector<obs::Gauge*> ingest_rate_gauges_;
  std::vector<obs::Gauge*> query_rate_gauges_;
  std::vector<obs::Gauge*> queue_hwm_gauges_;
  std::vector<obs::Gauge*> stall_nanos_gauges_;
  /// Each shard's arena budget slice, for the health arena-pressure
  /// input (0 = unbudgeted).
  uint64_t shard_arena_budget_bytes_ = 0;
  bool drained_ = false;
  /// Declared after the components the scrape handlers read, so they
  /// are destroyed first (the HTTP server joins its accept loop, then
  /// the reporter stops) and a late tick or scrape never sees a
  /// half-torn-down service.
  std::unique_ptr<obs::StatsReporter> reporter_;
  std::unique_ptr<obs::HttpExporter> exporter_;
};

}  // namespace microprov

#endif  // MICROPROV_SERVICE_SERVICE_H_
