#ifndef MICROPROV_SERVICE_SHARDED_ENGINE_H_
#define MICROPROV_SERVICE_SHARDED_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/atomic_counter.h"
#include "common/bounded_queue.h"
#include "common/status.h"
#include "common/task_pool.h"
#include "core/engine.h"
#include "obs/shard_health.h"

namespace microprov {

/// Configuration for the sharded ingestion pipeline.
struct ShardedEngineOptions {
  /// Number of partitions; each owns a full ProvenanceEngine, a clock,
  /// a bounded input queue, and one worker thread.
  size_t num_shards = 4;
  /// Per-shard queue bound; a full queue blocks the submitter
  /// (backpressure) rather than dropping messages.
  size_t queue_capacity = 1024;
  /// Messages a worker dequeues per lock acquisition.
  size_t max_batch = 64;
  /// Engine configuration applied to every shard. Note pool limits are
  /// per shard: N shards at limit M hold up to N*M live bundles total.
  /// When `engine.metrics` is set, the sharded engine also registers its
  /// own queue-depth / backpressure / throughput instruments there and
  /// stamps each shard's engine with its shard index (per-shard gauge
  /// labels); `engine.trace` is shared by every shard (TraceSink is
  /// thread-safe and events carry their shard id).
  EngineOptions engine;
  /// Construct without starting the worker threads; the owner calls
  /// Start() once it is done mutating shard state single-threaded
  /// (checkpoint import + WAL replay at recovery).
  bool defer_workers = false;
  /// Worker threads in the persistent query fan-out pool (the calling
  /// thread always participates, so 0 still works — per-shard searches
  /// just run serially on the caller). The pool idles between queries.
  size_t query_threads = 0;
  /// Thresholds for the per-shard ShardLoadTracker verdicts.
  obs::ShardHealthOptions health;
};

/// Point-in-time view of one shard's counters (readable while workers
/// run; counts are monotonic and may trail the queue by a batch).
struct ShardStatsSnapshot {
  uint64_t enqueued = 0;
  uint64_t ingested = 0;
  uint64_t batches = 0;
  /// Submit calls that blocked on a full queue (backpressure events).
  uint64_t blocked_pushes = 0;
  size_t queue_depth = 0;
};

/// Shard routing: hashes the message's strongest bundle indicant so
/// messages likely to join the same bundle land on the same shard —
/// the re-shared author for retweets, else the first URL, else the
/// first hashtag, else the message author. Deterministic in the message
/// alone (no global state), so a stream replays to the same placement.
uint32_t RouteShard(const Message& msg, size_t num_shards);

/// Hash-partitioned parallel ingestion over N single-writer
/// ProvenanceEngine instances. The paper's engine is single-writer by
/// design (the stream is totally ordered); this preserves that invariant
/// per shard: each engine is mutated only by its own worker thread,
/// fed through a bounded SPSC queue.
///
/// Threading contract:
///   * Submit / Flush / Drain must be called from one thread at a time
///     (the Service façade serializes them).
///   * Reading shard engines (shard(), query fan-out) is only safe after
///     Flush() or Drain() returned with no Submit since — the flush
///     barrier establishes the necessary happens-before edge.
class ShardedEngine {
 public:
  /// `archives` supplies one BundleArchive per shard (may be empty =
  /// no disk back-end, or hold nullptr entries). Archives must outlive
  /// the engine and are used exclusively by their shard's worker.
  explicit ShardedEngine(const ShardedEngineOptions& options,
                         std::vector<BundleArchive*> archives = {});
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Starts the worker threads after a defer_workers construction.
  /// Idempotent; must not race Submit.
  void Start();

  /// Routes `msg` and enqueues it on its shard, blocking while that
  /// shard's queue is full. Sets `*shard_out` (if non-null) to the shard
  /// chosen. Fails after Drain() or once any shard worker reported an
  /// ingest error.
  Status Submit(const Message& msg, uint32_t* shard_out = nullptr);

  /// Barrier: blocks until every submitted message has been fully
  /// ingested. After it returns, shard engine state is safe to read
  /// from the calling thread.
  Status Flush();

  /// End-of-stream: Flush, stop the workers, and (when a shard has an
  /// archive) drain its live bundles to it. Idempotent.
  Status Drain();

  size_t num_shards() const { return shards_.size(); }

  /// The shard's engine; see the threading contract above.
  const ProvenanceEngine& shard(size_t i) const {
    return shards_[i]->engine;
  }

  /// The shard's stream-time watermark (same safety rules as shard()).
  Timestamp shard_clock(size_t i) const {
    return shards_[i]->clock.Now();
  }

  // Recovery hooks, valid ONLY between a defer_workers construction and
  // Start(): the single recovering thread owns every shard exclusively.

  /// Mutable shard engine for checkpoint import / WAL replay.
  ProvenanceEngine* mutable_shard(size_t i) {
    return &shards_[i]->engine;
  }
  /// Mutable shard clock, restored to the checkpointed watermark so
  /// replayed and future messages age bundles identically.
  SimulatedClock* mutable_clock(size_t i) { return &shards_[i]->clock; }
  /// Folds recovered messages into the shard's ingested tally so
  /// Stats() continuity survives a restart.
  void SeedIngested(size_t i, uint64_t n);

  /// Mutable shard engine under the flush-barrier contract: callable
  /// after Start(), but only from the serialized Submit/Flush/Drain
  /// thread and only after Flush()/Drain() returned with no Submit
  /// since (the same window in which shard() is readable). Used by the
  /// incremental-checkpoint path, whose ExportDelta advances the
  /// engine's delta cursors.
  ProvenanceEngine* mutable_shard_quiesced(size_t i) {
    return &shards_[i]->engine;
  }

  ShardStatsSnapshot shard_stats(size_t i) const;

  /// The persistent query fan-out pool, or null when query_threads == 0
  /// (callers fall back to serial per-shard search). Safe to share with
  /// BundleQueryProcessor::SearchShards under the same flush-barrier
  /// contract as shard().
  TaskPool* query_pool() const { return query_pool_.get(); }

  /// The shard's load tracker (never null; thread-safe). The ingest
  /// hot paths feed it; the stats/scrape path calls Evaluate on it.
  obs::ShardLoadTracker* load_tracker(size_t i) const {
    return shards_[i]->load_tracker.get();
  }

  /// Messages accepted for the shard but not yet applied by its worker:
  /// the queue backlog PLUS the batch currently being ingested. This is
  /// the health checker's backlog signal — a worker frozen mid-message
  /// keeps it nonzero even though the queue itself has drained.
  /// Thread-safe.
  size_t shard_in_flight(size_t i) const;

  /// Total messages ingested across shards (approximate while running).
  uint64_t messages_ingested() const;

  /// Live bundles across all shard pools (post-Flush).
  size_t TotalPoolSize() const;

  size_t ApproxMemoryUsage() const;

  /// Per-component footprint summed across shards (post-Flush, like
  /// every other direct engine read).
  MemoryBreakdown MemoryUsage() const;

 private:
  struct Shard {
    Shard(const EngineOptions& engine_options, BundleArchive* archive,
          size_t queue_capacity)
        : engine(engine_options, &clock, archive),
          queue(queue_capacity) {}

    /// Advanced only by the worker thread (per-shard stream time).
    SimulatedClock clock;
    ProvenanceEngine engine;
    BoundedSpscQueue<Message> queue;
    std::thread worker;

    /// Flush barrier: messages submitted but not yet ingested.
    std::mutex mu;
    std::condition_variable all_ingested;
    uint64_t in_flight = 0;
    Status error;  // first worker-side ingest error, guarded by mu

    AtomicCounter enqueued;
    AtomicCounter ingested;
    AtomicCounter batches;

    /// Per-shard load accounting for health verdicts (always present).
    std::unique_ptr<obs::ShardLoadTracker> load_tracker;

    // Observability handles (null without a registry; never owned).
    obs::Counter* ingested_counter = nullptr;
    obs::Gauge* depth_gauge = nullptr;
  };

  void WorkerLoop(Shard* shard);

  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<TaskPool> query_pool_;
  bool started_ = false;
  bool drained_ = false;

  // Shared across shards (null without a registry; never owned).
  obs::Counter* backpressure_counter_ = nullptr;
  obs::Counter* batches_counter_ = nullptr;
  obs::HistogramMetric* batch_size_hist_ = nullptr;
};

}  // namespace microprov

#endif  // MICROPROV_SERVICE_SHARDED_ENGINE_H_
