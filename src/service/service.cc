#include "service/service.h"

#include "common/env.h"
#include "common/string_util.h"

namespace microprov {

Service::Service(const ServiceOptions& options)
    : options_(options),
      registry_(std::make_unique<obs::MetricsRegistry>()) {
  if (options_.trace_capacity > 0) {
    trace_ = std::make_unique<obs::TraceSink>(options_.trace_capacity);
  }
}

StatusOr<std::unique_ptr<Service>> Service::Open(
    const ServiceOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (options.stats_interval_ms > 0 && !options.stats_callback) {
    return Status::InvalidArgument(
        "stats_interval_ms requires a stats_callback");
  }
  std::unique_ptr<Service> service(new Service(options));

  std::vector<BundleArchive*> archives;
  if (!options.archive_dir.empty()) {
    MICROPROV_RETURN_IF_ERROR(
        Env::Default()->CreateDirIfMissing(options.archive_dir));
    for (size_t i = 0; i < options.num_shards; ++i) {
      BundleStore::Options store_options;
      store_options.dir =
          StringPrintf("%s/shard-%zu", options.archive_dir.c_str(), i);
      auto store_or = BundleStore::Open(store_options);
      if (!store_or.ok()) return store_or.status();
      (*store_or)
          ->BindMetrics(service->registry_.get(),
                        StringPrintf("shard=\"%zu\"", i));
      archives.push_back(store_or->get());
      service->stores_.push_back(std::move(*store_or));
    }
  }

  ShardedEngineOptions sharded_options;
  sharded_options.num_shards = options.num_shards;
  sharded_options.queue_capacity = options.queue_capacity;
  sharded_options.max_batch = options.max_batch;
  // ServiceOptions::engine describes the whole deployment; each shard
  // gets a 1/N slice of the pool budget and the pool-relative matcher
  // caps so total memory and per-message selectivity stay what the
  // caller configured regardless of shard count.
  sharded_options.engine = options.engine.ShardSlice(options.num_shards);
  sharded_options.engine.metrics = service->registry_.get();
  sharded_options.engine.trace = service->trace_.get();
  service->sharded_ = std::make_unique<ShardedEngine>(sharded_options,
                                                      std::move(archives));

  // Cache the per-shard gauges Stats() aggregates. Everything below was
  // registered while the pipeline was constructed, so the Get* calls
  // only look up existing entries.
  obs::MetricsRegistry* registry = service->registry_.get();
  for (size_t i = 0; i < options.num_shards; ++i) {
    const std::string shard_label = StringPrintf("shard=\"%zu\"", i);
    service->pool_gauges_.push_back(
        registry->GetGauge("microprov_pool_bundles", shard_label));
    service->memory_gauges_.push_back(
        registry->GetGauge("microprov_engine_memory_bytes", shard_label));
    if (!options.archive_dir.empty()) {
      service->store_gauges_.push_back(
          registry->GetGauge("microprov_store_bundles", shard_label));
    }
  }

  if (options.stats_interval_ms > 0) {
    service->reporter_ = std::make_unique<obs::StatsReporter>(
        std::chrono::milliseconds(options.stats_interval_ms),
        [svc = service.get()] {
          svc->options_.stats_callback(svc->MetricsText());
        });
  }
  return service;
}

Service::~Service() = default;

StatusOr<IngestResult> Service::Ingest(const Message& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (drained_) {
    return Status::FailedPrecondition("Service already drained");
  }
  uint32_t shard = 0;
  MICROPROV_RETURN_IF_ERROR(sharded_->Submit(msg, &shard));
  clock_.Advance(msg.date);
  IngestResult result;
  result.shard = shard;
  return result;
}

StatusOr<std::vector<BundleSearchResult>> Service::Search(
    const BundleQuery& query) {
  std::lock_guard<std::mutex> lock(mu_);
  // Quiesce: every accepted message must be visible to the query.
  if (!drained_) {
    MICROPROV_RETURN_IF_ERROR(sharded_->Flush());
  }

  std::vector<BundleQueryProcessor> processors;
  processors.reserve(sharded_->num_shards());
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    BundleStore* store = i < stores_.size() ? stores_[i].get() : nullptr;
    processors.emplace_back(&sharded_->shard(i), options_.weights, store,
                            registry_.get());
  }
  std::vector<const BundleQueryProcessor*> shard_ptrs;
  shard_ptrs.reserve(processors.size());
  for (const auto& p : processors) shard_ptrs.push_back(&p);

  BundleQuery effective = query;
  if (effective.now == 0) effective.now = clock_.value();
  return BundleQueryProcessor::SearchShards(shard_ptrs, effective);
}

Status Service::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (drained_) return Status::OK();
  return sharded_->Flush();
}

Status Service::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  if (drained_) return Status::OK();
  MICROPROV_RETURN_IF_ERROR(sharded_->Drain());
  for (auto& store : stores_) {
    MICROPROV_RETURN_IF_ERROR(store->Flush());
  }
  drained_ = true;
  // The stream is over; one final tick ships the end state, then the
  // reporter goes quiet.
  if (reporter_ != nullptr) {
    options_.stats_callback(MetricsText());
    reporter_->Stop();
  }
  return Status::OK();
}

ServiceStats Service::Stats() const {
  // Every source here is an atomic counter, a gauge, or mutex-guarded
  // queue state — never a direct engine read — so this is safe while
  // shard workers are mid-ingest (and from the StatsReporter thread).
  ServiceStats stats;
  stats.messages_ingested = sharded_->messages_ingested();
  for (obs::Gauge* gauge : pool_gauges_) {
    stats.live_bundles += static_cast<size_t>(gauge->value());
  }
  for (obs::Gauge* gauge : memory_gauges_) {
    stats.memory_bytes += static_cast<size_t>(gauge->value());
  }
  for (obs::Gauge* gauge : store_gauges_) {
    stats.archived_bundles += static_cast<uint64_t>(gauge->value());
  }
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    stats.shards.push_back(sharded_->shard_stats(i));
    stats.queue_depth += stats.shards.back().queue_depth;
    stats.backpressure_stalls += stats.shards.back().blocked_pushes;
  }
  return stats;
}

}  // namespace microprov
