#include "service/service.h"

#include "common/env.h"
#include "common/string_util.h"

namespace microprov {

Service::Service(const ServiceOptions& options) : options_(options) {}

StatusOr<std::unique_ptr<Service>> Service::Open(
    const ServiceOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  std::unique_ptr<Service> service(new Service(options));

  std::vector<BundleArchive*> archives;
  if (!options.archive_dir.empty()) {
    MICROPROV_RETURN_IF_ERROR(
        Env::Default()->CreateDirIfMissing(options.archive_dir));
    for (size_t i = 0; i < options.num_shards; ++i) {
      BundleStore::Options store_options;
      store_options.dir =
          StringPrintf("%s/shard-%zu", options.archive_dir.c_str(), i);
      auto store_or = BundleStore::Open(store_options);
      if (!store_or.ok()) return store_or.status();
      archives.push_back(store_or->get());
      service->stores_.push_back(std::move(*store_or));
    }
  }

  ShardedEngineOptions sharded_options;
  sharded_options.num_shards = options.num_shards;
  sharded_options.queue_capacity = options.queue_capacity;
  sharded_options.max_batch = options.max_batch;
  // ServiceOptions::engine describes the whole deployment; each shard
  // gets a 1/N slice of the pool budget and the pool-relative matcher
  // caps so total memory and per-message selectivity stay what the
  // caller configured regardless of shard count.
  sharded_options.engine = options.engine.ShardSlice(options.num_shards);
  service->sharded_ = std::make_unique<ShardedEngine>(sharded_options,
                                                      std::move(archives));
  return service;
}

Service::~Service() = default;

StatusOr<IngestResult> Service::Ingest(const Message& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (drained_) {
    return Status::FailedPrecondition("Service already drained");
  }
  uint32_t shard = 0;
  MICROPROV_RETURN_IF_ERROR(sharded_->Submit(msg, &shard));
  clock_.Advance(msg.date);
  IngestResult result;
  result.shard = shard;
  return result;
}

StatusOr<std::vector<BundleSearchResult>> Service::Search(
    const BundleQuery& query) {
  std::lock_guard<std::mutex> lock(mu_);
  // Quiesce: every accepted message must be visible to the query.
  if (!drained_) {
    MICROPROV_RETURN_IF_ERROR(sharded_->Flush());
  }

  std::vector<BundleQueryProcessor> processors;
  processors.reserve(sharded_->num_shards());
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    BundleStore* store = i < stores_.size() ? stores_[i].get() : nullptr;
    processors.emplace_back(&sharded_->shard(i), options_.weights, store);
  }
  std::vector<const BundleQueryProcessor*> shard_ptrs;
  shard_ptrs.reserve(processors.size());
  for (const auto& p : processors) shard_ptrs.push_back(&p);

  BundleQuery effective = query;
  if (effective.now == 0) effective.now = clock_.value();
  return BundleQueryProcessor::SearchShards(shard_ptrs, effective);
}

Status Service::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (drained_) return Status::OK();
  return sharded_->Flush();
}

Status Service::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  if (drained_) return Status::OK();
  MICROPROV_RETURN_IF_ERROR(sharded_->Drain());
  for (auto& store : stores_) {
    MICROPROV_RETURN_IF_ERROR(store->Flush());
  }
  drained_ = true;
  return Status::OK();
}

ServiceStats Service::Stats() const {
  ServiceStats stats;
  stats.messages_ingested = sharded_->messages_ingested();
  stats.live_bundles = sharded_->TotalPoolSize();
  stats.memory_bytes = sharded_->ApproxMemoryUsage();
  for (const auto& store : stores_) {
    stats.archived_bundles += store->bundle_count();
  }
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    stats.shards.push_back(sharded_->shard_stats(i));
  }
  return stats;
}

}  // namespace microprov
