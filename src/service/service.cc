#include "service/service.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>

#include "common/env.h"
#include "common/string_util.h"

namespace microprov {

Service::Service(const ServiceOptions& options)
    : options_(options),
      registry_(std::make_unique<obs::MetricsRegistry>()) {
  if (options_.trace_capacity > 0) {
    trace_ = std::make_unique<obs::TraceSink>(
        options_.trace_capacity, options_.trace_sample_every);
  }
  if (options_.query_trace_capacity > 0 ||
      options_.slow_query_nanos > 0) {
    obs::QueryTraceSinkOptions sink_options;
    sink_options.capacity = options_.query_trace_capacity;
    sink_options.sample_every = options_.query_trace_sample_every;
    sink_options.slow_query_nanos = options_.slow_query_nanos;
    sink_options.slow_capacity = options_.slow_query_capacity;
    query_trace_ = std::make_unique<obs::QueryTraceSink>(sink_options);
  }
}

StatusOr<std::unique_ptr<Service>> Service::Open(
    const ServiceOptions& options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (options.stats_interval_ms > 0 && !options.stats_callback) {
    return Status::InvalidArgument(
        "stats_interval_ms requires a stats_callback");
  }
  // An inconsistent memory budget fails Open up front (InvalidArgument)
  // rather than misbehaving at the first over-budget allocation.
  Status budget = options.engine.memory.Validate();
  if (!budget.ok()) return budget;
  std::unique_ptr<Service> service(new Service(options));

  std::vector<BundleArchive*> archives;
  if (!options.archive_dir.empty()) {
    MICROPROV_RETURN_IF_ERROR(
        Env::Default()->CreateDirIfMissing(options.archive_dir));
    for (size_t i = 0; i < options.num_shards; ++i) {
      BundleStore::Options store_options;
      store_options.dir =
          StringPrintf("%s/shard-%zu", options.archive_dir.c_str(), i);
      auto store_or = BundleStore::Open(store_options);
      if (!store_or.ok()) return store_or.status();
      (*store_or)
          ->BindMetrics(service->registry_.get(),
                        StringPrintf("shard=\"%zu\"", i));
      archives.push_back(store_or->get());
      service->stores_.push_back(std::move(*store_or));
    }
  }

  ShardedEngineOptions sharded_options;
  sharded_options.num_shards = options.num_shards;
  sharded_options.queue_capacity = options.queue_capacity;
  sharded_options.max_batch = options.max_batch;
  // ServiceOptions::engine describes the whole deployment; each shard
  // gets a 1/N slice of the pool budget and the pool-relative matcher
  // caps so total memory and per-message selectivity stay what the
  // caller configured regardless of shard count.
  sharded_options.engine = options.engine.ShardSlice(options.num_shards);
  sharded_options.engine.metrics = service->registry_.get();
  sharded_options.engine.trace = service->trace_.get();
  sharded_options.health = options.health;
  // The caller participates in the fan-out, so more workers than the
  // remaining shards would only idle.
  sharded_options.query_threads =
      options.num_shards > 0
          ? std::min(options.query_threads, options.num_shards - 1)
          : 0;
  // Workers start only after recovery has finished mutating shard state.
  sharded_options.defer_workers = true;
  service->shard_arena_budget_bytes_ =
      sharded_options.engine.memory.index_arena_bytes;
  service->sharded_ = std::make_unique<ShardedEngine>(sharded_options,
                                                      std::move(archives));

  if (options.durability.enabled()) {
    auto manager_or = recovery::DurabilityManager::Open(
        options.durability, static_cast<uint32_t>(options.num_shards),
        service->registry_.get());
    if (!manager_or.ok()) return manager_or.status();
    service->durability_ = std::move(*manager_or);
    MICROPROV_RETURN_IF_ERROR(service->Recover());
    if (service->recovered_tail_dirty_) {
      // The tail held torn bytes, orphaned sequences, or duplicates:
      // everything recoverable was recovered, but replaying those
      // segments again would be ambiguous (and a torn segment would no
      // longer be final). Installing a base checkpoint now retires the
      // damaged epochs before the WAL reopens.
      MICROPROV_RETURN_IF_ERROR(
          service->CheckpointLocked(/*force_base=*/true));
      service->recovered_tail_dirty_ = false;
    }
    MICROPROV_RETURN_IF_ERROR(
        service->durability_->StartWal(service->accepted_));
    obs::MetricsRegistry* reg = service->registry_.get();
    service->wal_appends_counter_ =
        reg->GetCounter("microprov_wal_appends_total", "");
    service->wal_bytes_counter_ =
        reg->GetCounter("microprov_wal_bytes_total", "");
    service->checkpoints_counter_ =
        reg->GetCounter("microprov_checkpoints_total", "");
    service->replayed_counter_ =
        reg->GetCounter("microprov_recovery_replayed_messages_total", "");
  }
  service->sharded_->Start();

  // Cache the per-shard gauges Stats() aggregates. Everything below was
  // registered while the pipeline was constructed, so the Get* calls
  // only look up existing entries.
  obs::MetricsRegistry* registry = service->registry_.get();
  for (size_t i = 0; i < options.num_shards; ++i) {
    const std::string shard_label = StringPrintf("shard=\"%zu\"", i);
    service->pool_gauges_.push_back(
        registry->GetGauge("microprov_pool_bundles", shard_label));
    service->memory_gauges_.push_back(
        registry->GetGauge("microprov_engine_memory_bytes", shard_label));
    service->mem_pool_gauges_.push_back(
        registry->GetGauge("microprov_engine_memory_component_bytes",
                           shard_label + ",component=\"pool\""));
    service->mem_index_gauges_.push_back(
        registry->GetGauge("microprov_engine_memory_component_bytes",
                           shard_label + ",component=\"summary_index\""));
    service->mem_arena_gauges_.push_back(
        registry->GetGauge("microprov_engine_memory_component_bytes",
                           shard_label + ",component=\"arena\""));
    service->mem_dict_gauges_.push_back(
        registry->GetGauge("microprov_engine_memory_component_bytes",
                           shard_label + ",component=\"dictionary\""));
    if (!options.archive_dir.empty()) {
      service->store_gauges_.push_back(
          registry->GetGauge("microprov_store_bundles", shard_label));
    }
    service->health_gauges_.push_back(registry->GetGauge(
        "microprov_shard_health", shard_label,
        "Per-shard health verdict: 0=ok, 1=degraded, 2=stalled"));
    service->ingest_rate_gauges_.push_back(registry->GetGauge(
        "microprov_shard_ingest_rate", shard_label,
        "EWMA messages ingested per second, per shard"));
    service->query_rate_gauges_.push_back(registry->GetGauge(
        "microprov_shard_query_rate", shard_label,
        "EWMA queries touching the shard per second"));
    service->queue_hwm_gauges_.push_back(registry->GetGauge(
        "microprov_shard_queue_high_watermark", shard_label,
        "Deepest the shard's input queue has been"));
    service->stall_nanos_gauges_.push_back(registry->GetGauge(
        "microprov_shard_backpressure_stall_nanos", shard_label,
        "Cumulative producer time blocked on the shard's full queue"));
  }

  if (options.stats_interval_ms > 0) {
    service->reporter_ = std::make_unique<obs::StatsReporter>(
        std::chrono::milliseconds(options.stats_interval_ms),
        [svc = service.get()] {
          // Evaluating health first keeps the shipped exposition's
          // health gauges at most one tick stale.
          svc->Health();
          svc->options_.stats_callback(svc->MetricsText());
        });
  }

  if (options.http_port >= 0) {
    obs::HttpExporter::Options http_options;
    http_options.bind_address = options.http_bind_address;
    http_options.port = static_cast<uint16_t>(options.http_port);
    service->exporter_ = std::make_unique<obs::HttpExporter>(
        http_options,
        [svc = service.get()](std::string_view path,
                              std::string_view query) {
          return svc->HandleHttp(path, query);
        });
    MICROPROV_RETURN_IF_ERROR(service->exporter_->Start());
  }
  return service;
}

Service::~Service() = default;

Status Service::Recover() {
  // Single-threaded: workers have not started, so the shard engines and
  // clocks are exclusively ours.
  if (durability_->has_snapshot()) {
    recovery::ServiceSnapshot snapshot = durability_->TakeSnapshot();
    for (size_t i = 0; i < sharded_->num_shards(); ++i) {
      recovery::ShardSnapshot& shard = snapshot.shards[i];
      MICROPROV_RETURN_IF_ERROR(
          sharded_->mutable_shard(i)->ImportState(shard.state));
      sharded_->mutable_clock(i)->Set(shard.clock);
      sharded_->SeedIngested(i, shard.state.messages_ingested);
    }
    clock_.Advance(snapshot.watermark);
    accepted_ = snapshot.accepted;
  }
  // Read every shard's WAL tail. Interior corruption (or a torn tail
  // anywhere but the final segment) fails recovery outright rather
  // than silently replaying a stream with a hole in the middle.
  const uint64_t checkpoint_accepted = accepted_;
  const size_t num_shards = sharded_->num_shards();
  std::vector<std::vector<recovery::WalTailRecord>> tails(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto tail_or = durability_->ReadShardTail(static_cast<uint32_t>(i));
    if (!tail_or.ok()) return tail_or.status();
    tails[i] = std::move(*tail_or);
  }
  // Durable-watermark resolution. Legacy v1 records carry no sequence
  // (seq == 0): they predate group commit, were written synchronously
  // before acceptance, and are unconditionally durable in file order.
  // v2 records carry the service acceptance sequence; only the largest
  // contiguous prefix past the watermark base (checkpoint acceptance +
  // legacy count) is known complete. Records past a gap (orphans of a
  // mid-batch crash) and duplicate sequences (resolved last-writer-
  // wins by WAL position) mark the tail dirty: they are skipped, and
  // Open retires their epochs with a forced base checkpoint. Records
  // at or below the checkpoint's acceptance count are stale epochs
  // retained by the delta-chain GC policy and skip silently.
  uint64_t legacy_total = 0;
  for (const auto& tail : tails) {
    for (const auto& record : tail) {
      if (record.seq == 0) ++legacy_total;
    }
  }
  const uint64_t watermark_base = checkpoint_accepted + legacy_total;
  struct Keeper {
    size_t shard = 0;
    size_t index = 0;
    uint64_t epoch = 0;
    uint32_t part = 0;
  };
  std::unordered_map<uint64_t, Keeper> by_seq;
  bool duplicates = false;
  for (size_t i = 0; i < num_shards; ++i) {
    for (size_t j = 0; j < tails[i].size(); ++j) {
      const recovery::WalTailRecord& record = tails[i][j];
      if (record.seq == 0 || record.seq <= checkpoint_accepted) continue;
      Keeper keeper{i, j, record.epoch, record.part};
      auto [it, inserted] = by_seq.emplace(record.seq, keeper);
      if (!inserted) {
        duplicates = true;
        const Keeper& held = it->second;
        if (std::tie(keeper.epoch, keeper.part, keeper.shard) >
            std::tie(held.epoch, held.part, held.shard)) {
          it->second = keeper;
        }
      }
    }
  }
  uint64_t watermark = watermark_base;
  while (by_seq.count(watermark + 1) != 0) ++watermark;
  const bool orphans = by_seq.size() > watermark - watermark_base;
  recovered_tail_dirty_ =
      duplicates || orphans ||
      durability_->replay_stats().torn_tail_bytes > 0;
  // Apply per shard in the exact order the shard workers originally
  // ingested: legacy records in file order first, then the kept v2
  // records ascending by acceptance sequence (the service serializes
  // acceptance, so per-shard ingest order follows it). Ingest is
  // deterministic per shard, so the recovered engines match the
  // pre-crash ones over the durable prefix.
  uint64_t total_applied = 0;
  for (size_t i = 0; i < num_shards; ++i) {
    ProvenanceEngine* engine = sharded_->mutable_shard(i);
    SimulatedClock* clock = sharded_->mutable_clock(i);
    std::vector<size_t> order;
    for (size_t j = 0; j < tails[i].size(); ++j) {
      if (tails[i][j].seq == 0) order.push_back(j);
    }
    std::vector<std::pair<uint64_t, size_t>> kept;
    for (const auto& [seq, keeper] : by_seq) {
      if (keeper.shard == i && seq <= watermark) {
        kept.emplace_back(seq, keeper.index);
      }
    }
    std::sort(kept.begin(), kept.end());
    for (const auto& [seq, index] : kept) order.push_back(index);
    uint64_t applied = 0;
    for (size_t index : order) {
      Message& msg = tails[i][index].msg;
      clock->Advance(msg.date);
      clock_.Advance(msg.date);
      auto result = engine->Ingest(msg);
      if (!result.ok()) return result.status();
      ++applied;
    }
    sharded_->SeedIngested(i, applied);
    total_applied += applied;
  }
  durability_->NoteReplayed(total_applied);
  accepted_ = watermark;
  return Status::OK();
}

StatusOr<IngestResult> Service::Ingest(const Message& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  if (drained_) {
    return Status::FailedPrecondition("Service already drained");
  }
  // Submit FIRST, log after: a message reaches the WAL only once the
  // pipeline owns it, so replay can never resurrect a message Submit
  // rejected (the old log-then-submit order re-ingested such messages
  // on recovery). The cost is asymmetric and safe: a crash between
  // Submit and the append only loses a message that was never durable.
  uint32_t shard = 0;
  MICROPROV_RETURN_IF_ERROR(sharded_->Submit(msg, &shard));
  clock_.Advance(msg.date);
  ++accepted_;
  ++accepted_since_checkpoint_;
  if (durability_ != nullptr && durability_->wal_started()) {
    MICROPROV_RETURN_IF_ERROR(
        durability_->EnqueueAppend(shard, accepted_, msg));
  }
  if (durability_ != nullptr &&
      options_.durability.checkpoint_every_messages > 0 &&
      accepted_since_checkpoint_ >=
          options_.durability.checkpoint_every_messages) {
    MICROPROV_RETURN_IF_ERROR(CheckpointLocked());
  }
  IngestResult result;
  result.shard = shard;
  return result;
}

StatusOr<std::vector<BundleSearchResult>> Service::Search(
    const BundleQuery& query) {
  std::lock_guard<std::mutex> lock(mu_);
  // Tracing decisions up front: a query is traced when it is sampled
  // into the main ring OR the slow log is armed (a slow query must be
  // captured with its spans even when sampled out — the routing
  // happens at Record time, once the latency is known).
  const bool sampled =
      query_trace_ != nullptr && query_trace_->ShouldSample();
  const bool tracing =
      query_trace_ != nullptr &&
      (sampled || query_trace_->options().slow_query_nanos > 0);

  // Quiesce: every accepted message must be visible to the query.
  if (!drained_) {
    MICROPROV_RETURN_IF_ERROR(sharded_->Flush());
  }

  std::vector<BundleQueryProcessor> processors;
  processors.reserve(sharded_->num_shards());
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    BundleStore* store = i < stores_.size() ? stores_[i].get() : nullptr;
    processors.emplace_back(&sharded_->shard(i), options_.weights, store,
                            registry_.get());
    sharded_->load_tracker(i)->NoteQuery();
  }
  std::vector<const BundleQueryProcessor*> shard_ptrs;
  shard_ptrs.reserve(processors.size());
  for (const auto& p : processors) shard_ptrs.push_back(&p);

  BundleQuery effective = query;
  if (effective.now == 0) effective.now = clock_.value();
  if (!tracing) {
    return BundleQueryProcessor::SearchShards(shard_ptrs, effective,
                                              nullptr, 0, nullptr,
                                              sharded_->query_pool());
  }

  obs::SpanRecorder recorder;
  obs::QueryTraceEvent event;
  event.query_id = query_trace_->NextQueryId();
  event.text = effective.text;
  event.now = effective.now;
  event.k = effective.k;
  obs::Span root(&recorder, "search");
  const uint32_t root_id = root.id();
  std::vector<BundleSearchResult> results =
      BundleQueryProcessor::SearchShards(shard_ptrs, effective,
                                         &recorder, root_id, &event,
                                         sharded_->query_pool());
  root.End();
  event.spans = recorder.Take();
  for (const obs::SpanRecord& span : event.spans) {
    if (span.id == root_id) {
      event.total_nanos = static_cast<uint64_t>(span.duration_nanos);
      break;
    }
  }
  query_trace_->Record(std::move(event), sampled);
  return results;
}

Status Service::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (drained_) return Status::OK();
  MICROPROV_RETURN_IF_ERROR(sharded_->Flush());
  // Durability barrier: every accepted message is also on disk (per
  // the WAL flush policy) once Flush returns.
  if (durability_ != nullptr) {
    return durability_->WaitDurable(accepted_);
  }
  return Status::OK();
}

Status Service::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked();
}

Status Service::CheckpointLocked(bool force_base) {
  if (durability_ == nullptr) {
    return Status::FailedPrecondition("durability not configured");
  }
  // Quiesce so the shard engines are stable and readable, then make the
  // bundle stores durable: the snapshot references archived bundles by
  // assuming they survive the crash too.
  if (!drained_) {
    MICROPROV_RETURN_IF_ERROR(sharded_->Flush());
  }
  for (auto& store : stores_) {
    MICROPROV_RETURN_IF_ERROR(store->Flush());
  }
  // The checkpoint barrier covers the WAL too: every message the image
  // includes must be on disk before the install rotates epochs, or a
  // crash right after the install could lose acknowledged records.
  MICROPROV_RETURN_IF_ERROR(durability_->WaitDurable(accepted_));
  const size_t num_shards = sharded_->num_shards();
  if (!force_base && !checkpoint_force_base_ &&
      durability_->ShouldInstallDelta()) {
    recovery::ServiceDelta delta;
    delta.parent_seq = durability_->checkpoint_seq();
    delta.num_shards = static_cast<uint32_t>(num_shards);
    delta.watermark = clock_.value();
    delta.accepted = accepted_;
    delta.shards.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      recovery::ShardDelta shard;
      shard.clock = sharded_->shard_clock(i);
      shard.delta = sharded_->mutable_shard_quiesced(i)->ExportDelta();
      delta.shards.push_back(std::move(shard));
    }
    Status install = durability_->InstallDelta(delta);
    if (!install.ok()) {
      // ExportDelta already consumed the dirty sets; a retried delta
      // would have a hole. The next attempt must be a full base.
      checkpoint_force_base_ = true;
      return install;
    }
  } else {
    recovery::ServiceSnapshot snapshot;
    snapshot.num_shards = static_cast<uint32_t>(num_shards);
    snapshot.watermark = clock_.value();
    snapshot.accepted = accepted_;
    snapshot.shards.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      recovery::ShardSnapshot shard;
      shard.clock = sharded_->shard_clock(i);
      shard.state = sharded_->shard(i).ExportState();
      snapshot.shards.push_back(std::move(shard));
    }
    MICROPROV_RETURN_IF_ERROR(durability_->InstallCheckpoint(snapshot));
    // The base captured everything; restart delta tracking from it.
    for (size_t i = 0; i < num_shards; ++i) {
      sharded_->mutable_shard_quiesced(i)->ResetDeltaCursor();
    }
    checkpoint_force_base_ = false;
  }
  accepted_since_checkpoint_ = 0;
  return Status::OK();
}

Status Service::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  if (drained_) return Status::OK();
  MICROPROV_RETURN_IF_ERROR(sharded_->Drain());
  for (auto& store : stores_) {
    MICROPROV_RETURN_IF_ERROR(store->Flush());
  }
  drained_ = true;
  // Seal durable state: the final checkpoint captures the drained
  // engines (archived bundles included) as a full base image, so the
  // next Open recovers without replaying anything and every superseded
  // WAL epoch and delta file is truncated.
  if (durability_ != nullptr) {
    MICROPROV_RETURN_IF_ERROR(CheckpointLocked(/*force_base=*/true));
    MICROPROV_RETURN_IF_ERROR(durability_->Close());
  }
  // The stream is over; one final tick ships the end state, then the
  // reporter goes quiet.
  if (reporter_ != nullptr) {
    options_.stats_callback(MetricsText());
    reporter_->Stop();
  }
  return Status::OK();
}

ServiceStats Service::Stats() const {
  // Every source here is an atomic counter, a gauge, or mutex-guarded
  // queue state — never a direct engine read — so this is safe while
  // shard workers are mid-ingest (and from the StatsReporter thread).
  ServiceStats stats;
  stats.messages_ingested = sharded_->messages_ingested();
  for (obs::Gauge* gauge : pool_gauges_) {
    stats.live_bundles += static_cast<size_t>(gauge->value());
  }
  for (obs::Gauge* gauge : memory_gauges_) {
    stats.memory_bytes += static_cast<size_t>(gauge->value());
  }
  for (size_t i = 0; i < mem_pool_gauges_.size(); ++i) {
    stats.memory.pool_bytes +=
        static_cast<size_t>(mem_pool_gauges_[i]->value());
    stats.memory.summary_index_bytes +=
        static_cast<size_t>(mem_index_gauges_[i]->value());
    stats.memory.arena_bytes +=
        static_cast<size_t>(mem_arena_gauges_[i]->value());
    stats.memory.dictionary_bytes +=
        static_cast<size_t>(mem_dict_gauges_[i]->value());
  }
  for (obs::Gauge* gauge : store_gauges_) {
    stats.archived_bundles += static_cast<uint64_t>(gauge->value());
  }
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    stats.shards.push_back(sharded_->shard_stats(i));
    stats.queue_depth += stats.shards.back().queue_depth;
    stats.backpressure_stalls += stats.shards.back().blocked_pushes;
  }
  if (wal_appends_counter_ != nullptr) {
    stats.wal_appended_messages = wal_appends_counter_->value();
  }
  if (wal_bytes_counter_ != nullptr) {
    stats.wal_appended_bytes = wal_bytes_counter_->value();
  }
  if (checkpoints_counter_ != nullptr) {
    stats.checkpoints_installed = checkpoints_counter_->value();
  }
  if (replayed_counter_ != nullptr) {
    stats.replayed_messages = replayed_counter_->value();
  }
  stats.shard_health = Health();
  if (query_trace_ != nullptr) {
    stats.queries_traced = query_trace_->total_recorded();
    stats.slow_queries = query_trace_->slow_recorded();
  }
  return stats;
}

obs::ShardHealthSnapshot Service::EvaluateShard(size_t i) const {
  obs::ShardHealthInputs inputs;
  // in_flight rather than the raw queue depth: a worker frozen
  // mid-message has drained the queue but is still sitting on accepted,
  // unapplied work — exactly the backlog a stall verdict must see.
  inputs.queue_depth = sharded_->shard_in_flight(i);
  if (durability_ != nullptr) {
    inputs.wal_pending_bytes =
        durability_->PendingShardBytes(static_cast<uint32_t>(i));
    inputs.wal_flusher_age_nanos = durability_->FlusherHeartbeatAgeNanos();
  }
  inputs.arena_bytes =
      static_cast<uint64_t>(mem_arena_gauges_[i]->value());
  inputs.arena_budget_bytes = shard_arena_budget_bytes_;
  obs::ShardHealthSnapshot snap =
      sharded_->load_tracker(i)->Evaluate(inputs);
  health_gauges_[i]->Set(static_cast<int64_t>(snap.health));
  ingest_rate_gauges_[i]->Set(static_cast<int64_t>(snap.ingest_rate));
  query_rate_gauges_[i]->Set(static_cast<int64_t>(snap.query_rate));
  queue_hwm_gauges_[i]->Set(
      static_cast<int64_t>(snap.queue_high_watermark));
  stall_nanos_gauges_[i]->Set(snap.backpressure_stall_nanos);
  return snap;
}

std::vector<obs::ShardHealthSnapshot> Service::Health() const {
  std::vector<obs::ShardHealthSnapshot> out;
  out.reserve(sharded_->num_shards());
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    out.push_back(EvaluateShard(i));
  }
  return out;
}

namespace {

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          StringAppendF(out, "\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string Service::StatusJson() const {
  // One Stats() call drives the whole document so the shard table and
  // the aggregates come from the same instant.
  const ServiceStats stats = Stats();
  std::string out;
  StringAppendF(&out,
                "{\"messages_ingested\":%llu,\"live_bundles\":%zu,"
                "\"archived_bundles\":%llu,\"queue_depth\":%zu,"
                "\"backpressure_stalls\":%llu,"
                "\"wal_appended_messages\":%llu,"
                "\"checkpoints_installed\":%llu,"
                "\"replayed_messages\":%llu,"
                "\"queries_traced\":%llu,\"slow_queries\":%llu,"
                "\"memory\":{\"total_bytes\":%zu,\"pool_bytes\":%zu,"
                "\"summary_index_bytes\":%zu,\"arena_bytes\":%zu,"
                "\"dictionary_bytes\":%zu},\"shards\":[",
                (unsigned long long)stats.messages_ingested,
                stats.live_bundles,
                (unsigned long long)stats.archived_bundles,
                stats.queue_depth,
                (unsigned long long)stats.backpressure_stalls,
                (unsigned long long)stats.wal_appended_messages,
                (unsigned long long)stats.checkpoints_installed,
                (unsigned long long)stats.replayed_messages,
                (unsigned long long)stats.queries_traced,
                (unsigned long long)stats.slow_queries,
                stats.memory_bytes, stats.memory.pool_bytes,
                stats.memory.summary_index_bytes,
                stats.memory.arena_bytes,
                stats.memory.dictionary_bytes);
  for (size_t i = 0; i < stats.shard_health.size(); ++i) {
    const obs::ShardHealthSnapshot& h = stats.shard_health[i];
    const ShardStatsSnapshot& s = stats.shards[i];
    StringAppendF(
        &out,
        "%s{\"shard\":%u,\"health\":\"%s\",\"reason\":\"",
        i == 0 ? "" : ",", h.shard, obs::ShardHealthName(h.health));
    AppendJsonEscaped(&out, h.reason);
    StringAppendF(
        &out,
        "\",\"ingest_rate\":%.1f,\"query_rate\":%.1f,"
        "\"ingested\":%llu,\"enqueued\":%llu,\"queue_depth\":%zu,"
        "\"queue_high_watermark\":%zu,\"blocked_pushes\":%llu,"
        "\"backpressure_stall_nanos\":%lld,\"wal_pending_bytes\":%llu,"
        "\"wal_flusher_age_nanos\":%lld,\"arena_bytes\":%llu,"
        "\"arena_budget_bytes\":%llu}",
        h.ingest_rate, h.query_rate, (unsigned long long)h.ingested_total,
        (unsigned long long)s.enqueued, h.queue_depth,
        h.queue_high_watermark, (unsigned long long)s.blocked_pushes,
        (long long)h.backpressure_stall_nanos,
        (unsigned long long)h.wal_pending_bytes,
        (long long)h.wal_flusher_age_nanos,
        (unsigned long long)h.arena_bytes,
        (unsigned long long)h.arena_budget_bytes);
  }
  out += "]}";
  return out;
}

obs::HttpResponse Service::HandleHttp(std::string_view path,
                                      std::string_view query) const {
  obs::HttpResponse response;
  if (path == "/metrics") {
    // Health first, so the scrape's health gauges reflect this instant.
    Health();
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = MetricsText();
    return response;
  }
  if (path == "/healthz") {
    std::string detail;
    bool stalled = false;
    for (const obs::ShardHealthSnapshot& h : Health()) {
      if (h.health == obs::ShardHealth::kStalled) {
        stalled = true;
        StringAppendF(&detail, "shard %u stalled: %s\n", h.shard,
                      h.reason.c_str());
      }
    }
    response.status = stalled ? 503 : 200;
    response.body = stalled ? detail : "ok\n";
    return response;
  }
  if (path == "/statusz") {
    response.content_type = "application/json";
    response.body = StatusJson();
    return response;
  }
  if (path == "/debug/traces") {
    response.content_type = "application/x-ndjson";
    response.body =
        query == "ring=ingest" ? TraceJsonl() : QueryTraceJsonl();
    return response;
  }
  if (path == "/debug/slow") {
    response.content_type = "application/x-ndjson";
    response.body = SlowQueryJsonl();
    return response;
  }
  response.status = 404;
  response.body = "not found; try /metrics /healthz /statusz "
                  "/debug/traces /debug/slow\n";
  return response;
}

}  // namespace microprov
