#include "eval/edge_compare.h"

#include <algorithm>
#include <unordered_map>

namespace microprov {

EdgeMetrics CompareEdges(const EdgeLog& truth, const EdgeLog& approx) {
  EdgeLog::KeySet truth_set = truth.ToKeySet();
  EdgeMetrics metrics;
  metrics.truth_edges = truth_set.size();
  metrics.approx_edges = approx.size();
  for (const Edge& edge : approx.edges()) {
    if (truth_set.count({edge.parent, edge.child}) > 0) {
      ++metrics.matched;
    }
  }
  return metrics;
}

std::vector<EdgeMetrics> CompareEdgesAtCheckpoints(
    const EdgeLog& truth, const EdgeLog& approx,
    const std::vector<uint64_t>& message_boundaries) {
  // Each child has at most one edge per run; map child -> parent once.
  std::unordered_map<MessageId, MessageId> truth_parent;
  truth_parent.reserve(truth.size());
  for (const Edge& edge : truth.edges()) {
    truth_parent[edge.child] = edge.parent;
  }

  // Sort edge children so we can count per-boundary with prefix sums.
  // Edges are already recorded in ingest (=child id) order but sorting
  // keeps the contract independent of that detail.
  struct ChildEdge {
    MessageId child;
    MessageId parent;
  };
  std::vector<ChildEdge> approx_edges;
  approx_edges.reserve(approx.size());
  for (const Edge& edge : approx.edges()) {
    approx_edges.push_back({edge.child, edge.parent});
  }
  std::sort(approx_edges.begin(), approx_edges.end(),
            [](const ChildEdge& a, const ChildEdge& b) {
              return a.child < b.child;
            });
  std::vector<MessageId> truth_children;
  truth_children.reserve(truth.size());
  for (const Edge& edge : truth.edges()) {
    truth_children.push_back(edge.child);
  }
  std::sort(truth_children.begin(), truth_children.end());

  std::vector<EdgeMetrics> out;
  out.reserve(message_boundaries.size());
  size_t ai = 0;      // cursor into approx_edges
  size_t ti = 0;      // cursor into truth_children
  uint64_t matched = 0;
  std::vector<uint64_t> boundaries = message_boundaries;
  std::sort(boundaries.begin(), boundaries.end());
  for (uint64_t boundary : boundaries) {
    while (ai < approx_edges.size() &&
           approx_edges[ai].child < static_cast<MessageId>(boundary)) {
      auto it = truth_parent.find(approx_edges[ai].child);
      if (it != truth_parent.end() &&
          it->second == approx_edges[ai].parent) {
        ++matched;
      }
      ++ai;
    }
    while (ti < truth_children.size() &&
           truth_children[ti] < static_cast<MessageId>(boundary)) {
      ++ti;
    }
    EdgeMetrics metrics;
    metrics.truth_edges = ti;
    metrics.approx_edges = ai;
    metrics.matched = matched;
    out.push_back(metrics);
  }
  return out;
}

}  // namespace microprov
