#ifndef MICROPROV_EVAL_SERIES_H_
#define MICROPROV_EVAL_SERIES_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace microprov {

/// Tabular series collector for the figure harnesses: named columns, one
/// row per checkpoint. Renders an aligned terminal table and writes CSV so
/// the paper's plots can be regenerated with any plotting tool.
class SeriesTable {
 public:
  explicit SeriesTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Appends a row; must match the column count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience for numeric rows.
  void AddNumericRow(const std::vector<double>& values, int precision = 4);

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

  /// Aligned fixed-width rendering.
  std::string ToAlignedString() const;

  /// RFC-4180-ish CSV (cells are simple numerics/identifiers here).
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace microprov

#endif  // MICROPROV_EVAL_SERIES_H_
