#ifndef MICROPROV_EVAL_RUNNER_H_
#define MICROPROV_EVAL_RUNNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/engine.h"
#include "stream/message.h"

namespace microprov {

/// Snapshot of an engine's state at a stream checkpoint, feeding the
/// figure series (Figs. 7, 11, 12, 13).
struct CheckpointSample {
  uint64_t messages_seen = 0;
  Timestamp sim_now = 0;
  size_t pool_bundles = 0;
  uint64_t pool_messages = 0;
  size_t memory_bytes = 0;
  uint64_t edges_emitted = 0;
  StageTimers timers;
  PoolStats pool_stats;
};

/// Outcome of replaying a dataset through one engine configuration.
struct RunResult {
  EngineOptions options;
  std::vector<CheckpointSample> samples;
  /// Cumulative message-count boundaries matching `samples` (for the
  /// checkpointed edge comparison).
  std::vector<uint64_t> boundaries;
  /// The engine's full edge log (moved out of the engine at the end).
  EdgeLog edges;
  PoolStats final_pool_stats;
  StageTimers final_timers;
  /// Live pool contents at end of stream (bundle sizes / time spans for
  /// Fig. 6 when the run is Full Index).
  std::vector<std::pair<size_t, Timestamp>> final_bundle_sizes_and_spans;
};

struct RunnerOptions {
  uint64_t checkpoint_every = 50000;
  /// When non-empty, the engine archives evicted bundles here.
  std::string store_dir;
};

/// Replays `messages` through a fresh engine with `engine_options`,
/// sampling at checkpoints. The simulated clock follows the stream.
StatusOr<RunResult> RunEngine(const std::vector<Message>& messages,
                              const EngineOptions& engine_options,
                              const RunnerOptions& runner_options);

/// Convenience: the three paper configurations over the same stream.
StatusOr<std::vector<RunResult>> RunAllConfigs(
    const std::vector<Message>& messages, size_t pool_limit,
    size_t bundle_cap, const RunnerOptions& runner_options);

}  // namespace microprov

#endif  // MICROPROV_EVAL_RUNNER_H_
