#include "eval/runner.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/bundle_store.h"
#include "stream/replay.h"

namespace microprov {

StatusOr<RunResult> RunEngine(const std::vector<Message>& messages,
                              const EngineOptions& engine_options,
                              const RunnerOptions& runner_options) {
  SimulatedClock clock;
  std::unique_ptr<BundleStore> store;
  if (!runner_options.store_dir.empty()) {
    BundleStore::Options store_options;
    store_options.dir = runner_options.store_dir;
    auto store_or = BundleStore::Open(store_options);
    if (!store_or.ok()) return store_or.status();
    store = std::move(*store_or);
  }
  ProvenanceEngine engine(engine_options, &clock, store.get());

  RunResult result;
  result.options = engine_options;

  StreamReplayer replayer(&clock);
  replayer.set_checkpoint_every(runner_options.checkpoint_every);
  replayer.set_checkpoint([&](uint64_t seen, Timestamp now) {
    CheckpointSample sample;
    sample.messages_seen = seen;
    sample.sim_now = now;
    sample.pool_bundles = engine.pool().size();
    sample.pool_messages = engine.pool().TotalMessages();
    sample.memory_bytes = engine.ApproxMemoryUsage();
    sample.edges_emitted = engine.edge_log().size();
    sample.timers = engine.timers();
    sample.pool_stats = engine.pool().stats();
    result.samples.push_back(sample);
    result.boundaries.push_back(seen);
  });

  Status st = replayer.Replay(
      messages,
      [&](const Message& msg) { return engine.Ingest(msg).status(); });
  if (!st.ok()) return st;

  result.edges = engine.edge_log();
  result.final_pool_stats = engine.pool().stats();
  result.final_timers = engine.timers();
  result.final_bundle_sizes_and_spans.reserve(engine.pool().size());
  for (const auto& [id, bundle] : engine.pool().bundles()) {
    result.final_bundle_sizes_and_spans.emplace_back(
        bundle->size(), bundle->end_time() - bundle->start_time());
  }
  LOG_INFO() << IndexConfigToString(engine_options.config) << ": ingested "
             << HumanCount(engine.messages_ingested()) << " msgs, pool="
             << engine.pool().size() << " bundles, mem="
             << HumanBytes(engine.ApproxMemoryUsage()) << ", edges="
             << engine.edge_log().size();
  return result;
}

StatusOr<std::vector<RunResult>> RunAllConfigs(
    const std::vector<Message>& messages, size_t pool_limit,
    size_t bundle_cap, const RunnerOptions& runner_options) {
  std::vector<RunResult> results;
  for (IndexConfig config :
       {IndexConfig::kFullIndex, IndexConfig::kPartialIndex,
        IndexConfig::kBundleLimit}) {
    EngineOptions options =
        EngineOptions::ForConfig(config, pool_limit, bundle_cap);
    RunnerOptions ropts = runner_options;
    if (!ropts.store_dir.empty()) {
      ropts.store_dir = StringPrintf(
          "%s/%d", runner_options.store_dir.c_str(),
          static_cast<int>(config));
    }
    auto result_or = RunEngine(messages, options, ropts);
    if (!result_or.ok()) return result_or.status();
    results.push_back(std::move(*result_or));
  }
  return results;
}

}  // namespace microprov
