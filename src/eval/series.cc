#include "eval/series.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/env.h"
#include "common/string_util.h"

namespace microprov {

void SeriesTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void SeriesTable::AddNumericRow(const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    // Integers print without a decimal tail.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
      cells.push_back(StringPrintf("%lld", (long long)v));
    } else {
      cells.push_back(StringPrintf("%.*f", precision, v));
    }
  }
  AddRow(std::move(cells));
}

std::string SeriesTable::ToAlignedString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    StringAppendF(&out, "%-*s  ", static_cast<int>(widths[i]),
                  columns_[i].c_str());
  }
  out += "\n";
  for (size_t i = 0; i < columns_.size(); ++i) {
    out += std::string(widths[i], '-') + "  ";
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      StringAppendF(&out, "%*s  ", static_cast<int>(widths[i]),
                    row[i].c_str());
    }
    out += "\n";
  }
  return out;
}

Status SeriesTable::WriteCsv(const std::string& path) const {
  std::string csv = Join(columns_, ",") + "\n";
  for (const auto& row : rows_) {
    csv += Join(row, ",") + "\n";
  }
  return Env::Default()->WriteStringToFile(path, csv);
}

}  // namespace microprov
