#ifndef MICROPROV_EVAL_EDGE_COMPARE_H_
#define MICROPROV_EVAL_EDGE_COMPARE_H_

#include <cstdint>
#include <vector>

#include "core/edge_log.h"

namespace microprov {

/// Section VI-B metrics comparing an approximate method's edge set E_i
/// against the Full Index ground truth E_0:
///   accuracy = |E_i ∩ E_0| / |E_i|   (how much of what we found is right)
///   coverage = |E_i ∩ E_0| / |E_0|   (the paper's "return": how much of
///                                     the truth we found)
struct EdgeMetrics {
  uint64_t truth_edges = 0;
  uint64_t approx_edges = 0;
  uint64_t matched = 0;

  double accuracy() const {
    return approx_edges == 0
               ? 0.0
               : static_cast<double>(matched) / approx_edges;
  }
  double coverage() const {
    return truth_edges == 0 ? 0.0
                            : static_cast<double>(matched) / truth_edges;
  }
};

/// Whole-run comparison.
EdgeMetrics CompareEdges(const EdgeLog& truth, const EdgeLog& approx);

/// Checkpointed comparison (Fig. 8): for each boundary b in
/// `message_boundaries` (exclusive upper bounds on message id, i.e. the
/// cumulative message counts at checkpoints), computes metrics over the
/// edges whose child id < b. Relies on message ids being assigned in
/// stream order, so "first k messages" == "ids < k".
std::vector<EdgeMetrics> CompareEdgesAtCheckpoints(
    const EdgeLog& truth, const EdgeLog& approx,
    const std::vector<uint64_t>& message_boundaries);

}  // namespace microprov

#endif  // MICROPROV_EVAL_EDGE_COMPARE_H_
