#ifndef MICROPROV_STREAM_MESSAGE_CODEC_H_
#define MICROPROV_STREAM_MESSAGE_CODEC_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "stream/message.h"

namespace microprov {

// Two codecs for messages:
//  * a TSV line codec for human-inspectable dataset files
//    (id \t date \t user \t rt_of_id \t text; indicants are re-derived on
//    load, which keeps files compact and exercises the parser), and
//  * a compact binary codec (varint fields, length-prefixed strings,
//    explicit indicants) used by the storage layer.

/// Renders one TSV line (no trailing newline). Tabs/newlines inside the
/// text are escaped as \t, \n, \\.
std::string EncodeMessageTsv(const Message& msg);

/// Parses a TSV line produced by EncodeMessageTsv. Extracts indicants from
/// the text field.
Status DecodeMessageTsv(std::string_view line, Message* msg);

/// Appends the binary encoding of `msg` to `*dst`.
void EncodeMessageBinary(const Message& msg, std::string* dst);

/// Decodes one binary message from the front of `*input`.
Status DecodeMessageBinary(std::string_view* input, Message* msg);

}  // namespace microprov

#endif  // MICROPROV_STREAM_MESSAGE_CODEC_H_
