#ifndef MICROPROV_STREAM_MESSAGE_H_
#define MICROPROV_STREAM_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "text/term_id.h"

namespace microprov {

/// Unique id of a message within a stream. Ids are assigned in arrival
/// order by the generator / loader and are never reused.
using MessageId = int64_t;

inline constexpr MessageId kInvalidMessageId = -1;

/// Interned ids for a message's indicants, stamped by an
/// IndicantDictionary so the ingest hot path (candidate fetch, Eq. 1
/// scoring, Alg. 2 placement, index update) never hashes or compares
/// strings. `source` tags which dictionary assigned the ids; consumers
/// must check StampedBy(their dictionary) before trusting them, since a
/// message may cross shard (= dictionary) boundaries.
struct MessageTermIds {
  std::vector<TermId> hashtags;
  std::vector<TermId> urls;
  std::vector<TermId> keywords;
  TermId user = kInvalidTermId;
  TermId retweet_of_user = kInvalidTermId;
  /// Identity of the stamping dictionary (opaque; never dereferenced).
  const void* source = nullptr;

  bool StampedBy(const void* dict) const {
    return source != nullptr && source == dict;
  }

  void Clear() {
    hashtags.clear();
    urls.clear();
    keywords.clear();
    user = kInvalidTermId;
    retweet_of_user = kInvalidTermId;
    source = nullptr;
  }
};

/// One micro-blog message: the paper's multi-field tuple
/// [date, user, msg, urls, hashtags, rt] (Definition 1), extended with the
/// derived keyword indicants the summary index uses.
struct Message {
  MessageId id = kInvalidMessageId;
  Timestamp date = 0;
  std::string user;
  std::string text;

  // Connection indicants extracted by text::ParseTweet (or synthesized
  // directly by the generator).
  std::vector<std::string> hashtags;
  std::vector<std::string> urls;
  std::vector<std::string> keywords;

  /// True when the text re-shares a previous message.
  bool is_retweet = false;
  /// Author of the re-shared message (empty when !is_retweet).
  std::string retweet_of_user;
  /// Id of the re-shared message when known (generator ground truth or
  /// resolved by the engine); kInvalidMessageId otherwise.
  MessageId retweet_of_id = kInvalidMessageId;

  /// Interned indicant ids (process-local cache, not part of message
  /// identity; see MessageTermIds). Not serialized.
  MessageTermIds term_ids;

  /// Approximate heap + inline footprint, for Fig. 11-style accounting.
  size_t ApproxMemoryUsage() const;

  /// Compares the logical message content; term_ids is a process-local
  /// interning cache and deliberately excluded (a decoded copy compares
  /// equal to the original even though only one was stamped).
  bool operator==(const Message& other) const {
    return id == other.id && date == other.date && user == other.user &&
           text == other.text && hashtags == other.hashtags &&
           urls == other.urls && keywords == other.keywords &&
           is_retweet == other.is_retweet &&
           retweet_of_user == other.retweet_of_user &&
           retweet_of_id == other.retweet_of_id;
  }
};

/// Fills the indicant fields of `msg` from `msg->text` via the tweet
/// parser. Keeps any generator-provided `retweet_of_id`.
void ExtractIndicants(Message* msg);

/// Builder used by tests and examples to assemble messages tersely.
class MessageBuilder {
 public:
  MessageBuilder& Id(MessageId id);
  MessageBuilder& Date(Timestamp date);
  MessageBuilder& Date(const std::string& yyyy_mm_dd_hh_mm_ss);
  MessageBuilder& User(std::string user);
  MessageBuilder& Text(std::string text);
  MessageBuilder& Hashtag(std::string tag);
  MessageBuilder& Url(std::string url);
  MessageBuilder& Keyword(std::string keyword);
  MessageBuilder& RetweetOf(MessageId id, std::string user);

  /// Returns the built message. If Text() was set but no explicit indicants
  /// were provided, indicants are extracted from the text.
  Message Build();

 private:
  Message msg_;
  bool explicit_indicants_ = false;
};

}  // namespace microprov

#endif  // MICROPROV_STREAM_MESSAGE_H_
