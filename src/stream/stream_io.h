#ifndef MICROPROV_STREAM_STREAM_IO_H_
#define MICROPROV_STREAM_STREAM_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "common/statusor.h"
#include "stream/message.h"

namespace microprov {

/// Writes messages to a TSV dataset file, one per line.
class MessageStreamWriter {
 public:
  static StatusOr<std::unique_ptr<MessageStreamWriter>> Open(
      const std::string& path);

  Status Write(const Message& msg);
  Status Close();
  uint64_t messages_written() const { return count_; }

 private:
  explicit MessageStreamWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}
  std::unique_ptr<WritableFile> file_;
  uint64_t count_ = 0;
};

/// Reads messages back from a TSV dataset file.
class MessageStreamReader {
 public:
  static StatusOr<std::unique_ptr<MessageStreamReader>> Open(
      const std::string& path);

  /// Reads the next message. Returns NotFound at end of stream.
  Status Next(Message* msg);
  uint64_t messages_read() const { return count_; }

 private:
  explicit MessageStreamReader(std::unique_ptr<SequentialFile> file)
      : file_(std::move(file)) {}
  Status FillBuffer();

  std::unique_ptr<SequentialFile> file_;
  std::string buffer_;
  size_t pos_ = 0;
  bool eof_ = false;
  uint64_t count_ = 0;
};

/// Convenience: loads a whole TSV dataset into memory.
StatusOr<std::vector<Message>> LoadMessages(const std::string& path);

/// Convenience: writes a whole dataset.
Status SaveMessages(const std::string& path,
                    const std::vector<Message>& messages);

}  // namespace microprov

#endif  // MICROPROV_STREAM_STREAM_IO_H_
