#include "stream/stream_io.h"

#include "stream/message_codec.h"

namespace microprov {

StatusOr<std::unique_ptr<MessageStreamWriter>> MessageStreamWriter::Open(
    const std::string& path) {
  auto file_or = Env::Default()->NewWritableFile(path);
  if (!file_or.ok()) return file_or.status();
  return std::unique_ptr<MessageStreamWriter>(
      new MessageStreamWriter(std::move(*file_or)));
}

Status MessageStreamWriter::Write(const Message& msg) {
  std::string line = EncodeMessageTsv(msg);
  line.push_back('\n');
  MICROPROV_RETURN_IF_ERROR(file_->Append(line));
  ++count_;
  return Status::OK();
}

Status MessageStreamWriter::Close() { return file_->Close(); }

StatusOr<std::unique_ptr<MessageStreamReader>> MessageStreamReader::Open(
    const std::string& path) {
  auto file_or = Env::Default()->NewSequentialFile(path);
  if (!file_or.ok()) return file_or.status();
  return std::unique_ptr<MessageStreamReader>(
      new MessageStreamReader(std::move(*file_or)));
}

Status MessageStreamReader::FillBuffer() {
  // Compact consumed prefix, then append a fresh chunk.
  buffer_.erase(0, pos_);
  pos_ = 0;
  std::string chunk;
  MICROPROV_RETURN_IF_ERROR(file_->Read(1 << 16, &chunk));
  if (chunk.empty()) {
    eof_ = true;
  } else {
    buffer_.append(chunk);
  }
  return Status::OK();
}

Status MessageStreamReader::Next(Message* msg) {
  for (;;) {
    size_t nl = buffer_.find('\n', pos_);
    if (nl == std::string::npos) {
      if (eof_) {
        if (pos_ < buffer_.size()) {
          // Final line without trailing newline.
          std::string_view line(buffer_.data() + pos_,
                                buffer_.size() - pos_);
          pos_ = buffer_.size();
          MICROPROV_RETURN_IF_ERROR(DecodeMessageTsv(line, msg));
          ++count_;
          return Status::OK();
        }
        return Status::NotFound("end of stream");
      }
      MICROPROV_RETURN_IF_ERROR(FillBuffer());
      continue;
    }
    std::string_view line(buffer_.data() + pos_, nl - pos_);
    pos_ = nl + 1;
    if (line.empty()) continue;
    MICROPROV_RETURN_IF_ERROR(DecodeMessageTsv(line, msg));
    ++count_;
    return Status::OK();
  }
}

StatusOr<std::vector<Message>> LoadMessages(const std::string& path) {
  auto reader_or = MessageStreamReader::Open(path);
  if (!reader_or.ok()) return reader_or.status();
  auto& reader = *reader_or;
  std::vector<Message> messages;
  Message msg;
  for (;;) {
    Status st = reader->Next(&msg);
    if (st.IsNotFound()) break;
    if (!st.ok()) return st;
    messages.push_back(std::move(msg));
  }
  return messages;
}

Status SaveMessages(const std::string& path,
                    const std::vector<Message>& messages) {
  auto writer_or = MessageStreamWriter::Open(path);
  if (!writer_or.ok()) return writer_or.status();
  auto& writer = *writer_or;
  for (const Message& msg : messages) {
    MICROPROV_RETURN_IF_ERROR(writer->Write(msg));
  }
  return writer->Close();
}

}  // namespace microprov
