#include "stream/message_codec.h"

#include "common/coding.h"
#include "common/string_util.h"

namespace microprov {

namespace {

std::string EscapeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      switch (s[i + 1]) {
        case 't':
          out.push_back('\t');
          ++i;
          continue;
        case 'n':
          out.push_back('\n');
          ++i;
          continue;
        case 'r':
          out.push_back('\r');
          ++i;
          continue;
        case '\\':
          out.push_back('\\');
          ++i;
          continue;
        default:
          break;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

void PutStringVector(std::string* dst, const std::vector<std::string>& v) {
  PutVarint32(dst, static_cast<uint32_t>(v.size()));
  for (const auto& s : v) PutLengthPrefixed(dst, s);
}

bool GetStringVector(std::string_view* input,
                     std::vector<std::string>* v) {
  uint32_t n = 0;
  if (!GetVarint32(input, &n)) return false;
  v->clear();
  v->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string_view piece;
    if (!GetLengthPrefixed(input, &piece)) return false;
    v->emplace_back(piece);
  }
  return true;
}

}  // namespace

std::string EncodeMessageTsv(const Message& msg) {
  std::string out;
  StringAppendF(&out, "%lld\t%lld\t%s\t%lld\t%s", (long long)msg.id,
                (long long)msg.date, EscapeField(msg.user).c_str(),
                (long long)msg.retweet_of_id,
                EscapeField(msg.text).c_str());
  return out;
}

Status DecodeMessageTsv(std::string_view line, Message* msg) {
  std::vector<std::string> fields = Split(line, '\t', /*keep_empty=*/true);
  if (fields.size() != 5) {
    return Status::Corruption(
        StringPrintf("TSV message line has %zu fields, want 5",
                     fields.size()));
  }
  *msg = Message();
  char* end = nullptr;
  msg->id = std::strtoll(fields[0].c_str(), &end, 10);
  if (end == fields[0].c_str()) {
    return Status::Corruption("bad message id: " + fields[0]);
  }
  msg->date = std::strtoll(fields[1].c_str(), &end, 10);
  if (end == fields[1].c_str()) {
    return Status::Corruption("bad message date: " + fields[1]);
  }
  msg->user = UnescapeField(fields[2]);
  msg->retweet_of_id = std::strtoll(fields[3].c_str(), &end, 10);
  msg->text = UnescapeField(fields[4]);
  ExtractIndicants(msg);
  if (msg->retweet_of_id != kInvalidMessageId) msg->is_retweet = true;
  return Status::OK();
}

void EncodeMessageBinary(const Message& msg, std::string* dst) {
  PutVarsint64(dst, msg.id);
  PutVarsint64(dst, msg.date);
  PutLengthPrefixed(dst, msg.user);
  PutLengthPrefixed(dst, msg.text);
  PutStringVector(dst, msg.hashtags);
  PutStringVector(dst, msg.urls);
  PutStringVector(dst, msg.keywords);
  PutVarint32(dst, msg.is_retweet ? 1 : 0);
  PutLengthPrefixed(dst, msg.retweet_of_user);
  PutVarsint64(dst, msg.retweet_of_id);
}

Status DecodeMessageBinary(std::string_view* input, Message* msg) {
  *msg = Message();
  std::string_view user, text, rt_user;
  uint32_t is_rt = 0;
  if (!GetVarsint64(input, &msg->id) || !GetVarsint64(input, &msg->date) ||
      !GetLengthPrefixed(input, &user) || !GetLengthPrefixed(input, &text) ||
      !GetStringVector(input, &msg->hashtags) ||
      !GetStringVector(input, &msg->urls) ||
      !GetStringVector(input, &msg->keywords) ||
      !GetVarint32(input, &is_rt) || !GetLengthPrefixed(input, &rt_user) ||
      !GetVarsint64(input, &msg->retweet_of_id)) {
    return Status::Corruption("truncated binary message");
  }
  msg->user = std::string(user);
  msg->text = std::string(text);
  msg->is_retweet = is_rt != 0;
  msg->retweet_of_user = std::string(rt_user);
  return Status::OK();
}

}  // namespace microprov
