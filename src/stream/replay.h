#ifndef MICROPROV_STREAM_REPLAY_H_
#define MICROPROV_STREAM_REPLAY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "stream/message.h"

namespace microprov {

/// Replays an archived message stream in published-date order, the way the
/// paper's simulation experiment does: "We import the micro-blog messages
/// into the system in a temporally ordered sequence. The latest message's
/// date is simulated as the system's current date."
///
/// The replayer drives a SimulatedClock and invokes:
///   * `sink` for every message, and
///   * `checkpoint` every `checkpoint_every` messages (and once at the end),
///     which is where the figure harnesses sample their series.
class StreamReplayer {
 public:
  using Sink = std::function<Status(const Message&)>;
  using Checkpoint =
      std::function<void(uint64_t messages_seen, Timestamp now)>;

  /// `clock` must outlive the replayer; may be nullptr if no simulated
  /// clock is needed.
  explicit StreamReplayer(SimulatedClock* clock) : clock_(clock) {}

  void set_checkpoint_every(uint64_t n) { checkpoint_every_ = n; }
  void set_checkpoint(Checkpoint cb) { checkpoint_ = std::move(cb); }

  /// Replays `messages` (already date-ordered; asserts monotonicity only in
  /// debug builds) into `sink`. Stops and returns the first sink error.
  Status Replay(const std::vector<Message>& messages, const Sink& sink);

  uint64_t messages_seen() const { return seen_; }

 private:
  SimulatedClock* clock_;
  Checkpoint checkpoint_;
  uint64_t checkpoint_every_ = 50000;
  uint64_t seen_ = 0;
};

}  // namespace microprov

#endif  // MICROPROV_STREAM_REPLAY_H_
