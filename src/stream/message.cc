#include "stream/message.h"

#include "common/memory_usage.h"
#include "text/tweet_parser.h"

namespace microprov {

size_t Message::ApproxMemoryUsage() const {
  size_t total = sizeof(Message);
  total += ::microprov::ApproxMemoryUsage(user);
  total += ::microprov::ApproxMemoryUsage(text);
  total += ::microprov::ApproxMemoryUsage(hashtags);
  total += ::microprov::ApproxMemoryUsage(urls);
  total += ::microprov::ApproxMemoryUsage(keywords);
  total += ::microprov::ApproxMemoryUsage(retweet_of_user);
  total += ApproxVectorUsage(term_ids.hashtags);
  total += ApproxVectorUsage(term_ids.urls);
  total += ApproxVectorUsage(term_ids.keywords);
  return total;
}

void ExtractIndicants(Message* msg) {
  ParsedTweet parsed = ParseTweet(msg->text);
  msg->hashtags = std::move(parsed.hashtags);
  msg->urls = std::move(parsed.urls);
  msg->keywords = std::move(parsed.keywords);
  if (parsed.is_retweet) {
    msg->is_retweet = true;
    msg->retweet_of_user = std::move(parsed.retweet_of_user);
  }
}

MessageBuilder& MessageBuilder::Id(MessageId id) {
  msg_.id = id;
  return *this;
}

MessageBuilder& MessageBuilder::Date(Timestamp date) {
  msg_.date = date;
  return *this;
}

MessageBuilder& MessageBuilder::Date(
    const std::string& yyyy_mm_dd_hh_mm_ss) {
  msg_.date = ParseTimestamp(yyyy_mm_dd_hh_mm_ss);
  return *this;
}

MessageBuilder& MessageBuilder::User(std::string user) {
  msg_.user = std::move(user);
  return *this;
}

MessageBuilder& MessageBuilder::Text(std::string text) {
  msg_.text = std::move(text);
  return *this;
}

MessageBuilder& MessageBuilder::Hashtag(std::string tag) {
  msg_.hashtags.push_back(std::move(tag));
  explicit_indicants_ = true;
  return *this;
}

MessageBuilder& MessageBuilder::Url(std::string url) {
  msg_.urls.push_back(std::move(url));
  explicit_indicants_ = true;
  return *this;
}

MessageBuilder& MessageBuilder::Keyword(std::string keyword) {
  msg_.keywords.push_back(std::move(keyword));
  explicit_indicants_ = true;
  return *this;
}

MessageBuilder& MessageBuilder::RetweetOf(MessageId id, std::string user) {
  msg_.is_retweet = true;
  msg_.retweet_of_id = id;
  msg_.retweet_of_user = std::move(user);
  return *this;
}

Message MessageBuilder::Build() {
  if (!explicit_indicants_ && !msg_.text.empty()) {
    MessageId rt_id = msg_.retweet_of_id;  // preserve ground truth
    bool was_rt = msg_.is_retweet;
    std::string rt_user = msg_.retweet_of_user;
    ExtractIndicants(&msg_);
    if (was_rt) {
      msg_.is_retweet = true;
      msg_.retweet_of_id = rt_id;
      if (!rt_user.empty()) msg_.retweet_of_user = rt_user;
    }
  }
  return std::move(msg_);
}

}  // namespace microprov
