#include "stream/replay.h"

#include <cassert>

namespace microprov {

Status StreamReplayer::Replay(const std::vector<Message>& messages,
                              const Sink& sink) {
  seen_ = 0;
  for (const Message& msg : messages) {
    if (clock_ != nullptr) clock_->Advance(msg.date);
    MICROPROV_RETURN_IF_ERROR(sink(msg));
    ++seen_;
    if (checkpoint_ && checkpoint_every_ > 0 &&
        seen_ % checkpoint_every_ == 0) {
      checkpoint_(seen_, clock_ != nullptr ? clock_->Now() : msg.date);
    }
  }
  if (checkpoint_ && (checkpoint_every_ == 0 || seen_ == 0 ||
                      seen_ % checkpoint_every_ != 0)) {
    checkpoint_(seen_, clock_ != nullptr ? clock_->Now() : 0);
  }
  return Status::OK();
}

}  // namespace microprov
